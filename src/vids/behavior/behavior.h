// Behavioral anomaly layer over the keyed-counter fact base (ROADMAP item 4).
//
// The spec machines only catch deviations from the protocol specification;
// attacks that stay protocol-legal — SPIT call blasting, distributed
// registration cracking, low-and-slow toll-fraud fan-out — pass them clean.
// This engine profiles *who* is talking instead of *how*: per-caller and
// per-registration-target sliding-window profiles (call rate, short-call
// mass, destination fan-out, User-Agent diversity, failed-registration
// streaks and their distinct-source spread, call-duration distribution on
// the obs log2 histogram) feed a weighted integer scoring function that
// emits severity-ranked AlertKind::kBehavior alerts carrying the full
// per-feature score breakdown as provenance.
//
// Determinism contract (the shard-equivalence argument, DESIGN.md §16):
// every state transition in this engine is a pure function of the event
// stream — (event time, event content) only. Sweep(now) exists solely to
// reclaim memory: a profile is only reclaimable once it has been idle past
// IdleHorizon(), which dominates every feature window, the alert cooldown
// and the open-call TTL, so a swept-and-recreated profile reacts to the
// next event exactly like a stale retained one (expired windows restart,
// expired distinct-slots are ignored, expired open calls are unclosable,
// the cooldown has lapsed either way). The plain Vids feeds it inline from
// the inspect path; the sharded engine feeds the coordinator's instance
// from the frontier-gated aggregate replay — both instances see the same
// time-ordered event stream, so they emit byte-identical alerts regardless
// of shard or producer count.
//
// Allocation discipline: the steady-state feed path (existing profile) is
// allocation-free — transparent string_view map probes, fixed-slot distinct
// rings, armed-window counters, in-place open-call slots, one histogram
// Record. Profiles are drawn from and recycled to a bounded pool
// (fact_base's kGroupPoolCap discipline); only first contact with a new
// entity or an actual alert emission allocates.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "obs/metrics.h"
#include "sim/time.h"
#include "vids/alert.h"

namespace vids::ids::behavior {

/// Alert classifications (tests and the soak harness match on these).
inline constexpr std::string_view kBehaviorSpit = "SPIT call burst";
inline constexpr std::string_view kBehaviorTollFraud = "toll-fraud fan-out";
inline constexpr std::string_view kBehaviorRegCracking =
    "registration cracking";
/// Machine name stamped on every behavioral alert.
inline constexpr std::string_view kBehaviorMachine = "behavior-profile";

struct BehaviorConfig {
  /// Master switch: when false no profiles are built and no events are
  /// recorded (the feed calls become no-ops).
  bool enabled = true;

  // --- caller-profile features ---
  /// Calls started (initial INVITEs) per caller within the window
  /// considered normal. A call-center agent places well under this; a SPIT
  /// bot blasts through it in seconds.
  int call_rate_threshold = 15;
  sim::Duration call_rate_window = sim::Duration::Seconds(10);
  /// Completed calls shorter than `short_call_max` within the window
  /// considered normal (mass short calls = answered-and-hung-up spam).
  int short_call_threshold = 12;
  sim::Duration short_call_window = sim::Duration::Seconds(10);
  sim::Duration short_call_max = sim::Duration::Seconds(2);
  /// Distinct destination AORs per caller within the window considered
  /// normal. The long window is what catches low-and-slow toll-fraud
  /// fan-out that keeps its rate under every short-window threshold.
  int fanout_threshold = 16;
  sim::Duration fanout_window = sim::Duration::Seconds(60);
  /// Distinct User-Agent strings per caller within the window considered
  /// normal (a real endpoint has one; rotating stacks are bot behavior).
  int ua_threshold = 4;
  sim::Duration ua_window = sim::Duration::Seconds(60);

  // --- registration-target features ---
  /// Failed REGISTER attempts (401/403/407 finals) against one AOR within
  /// the window considered normal (typos happen; crackers do not stop).
  int reg_failure_threshold = 8;
  sim::Duration reg_failure_window = sim::Duration::Seconds(30);
  /// Distinct failing source addresses within the window considered normal
  /// — the "distributed" in distributed registration cracking.
  int reg_source_threshold = 4;

  // --- scoring (integer milli-units per unit over threshold) ---
  int weight_call_rate = 400;
  int weight_short_call = 100;
  int weight_fanout = 150;
  int weight_ua = 250;
  int weight_reg_failure = 200;
  int weight_reg_source = 150;
  /// Total score at which an alert is emitted / escalates to "critical".
  int alert_score = 1000;
  int critical_score = 3000;
  /// Per-profile re-alert suppression. Must be at least the Vids
  /// alert_dedup_window so the plain engine's dedup table never fires on a
  /// behavioral alert — that keeps the plain and coordinator emission
  /// streams identical by construction.
  sim::Duration alert_cooldown = sim::Duration::Seconds(10);
  /// A call still open after this long can no longer be closed (no
  /// duration recorded). Bounds the open-call slots *and* is part of the
  /// sweep-independence argument (see IdleHorizon).
  sim::Duration open_call_ttl = sim::Duration::Seconds(120);

  /// Retired profiles kept for reuse (fact_base recycle-pool discipline).
  size_t profile_pool_cap = 256;

  /// The profile reclaim horizon: the maximum of every feature window, the
  /// alert cooldown and the open-call TTL. Sweeping a profile idle longer
  /// than this is invisible to future emissions (header comment).
  sim::Duration IdleHorizon() const;
};

class BehaviorEngine {
 public:
  /// Receives every emitted alert. The plain Vids routes this into
  /// RaiseAlert; the sharded coordinator into EmitAlert.
  using AlertSink = std::function<void(Alert&&)>;

  explicit BehaviorEngine(const BehaviorConfig& config);

  void set_alert_sink(AlertSink sink) { sink_ = std::move(sink); }
  const BehaviorConfig& config() const { return config_; }

  /// An initial INVITE (no To tag) from `caller` to `dest`. `call_hash`
  /// identifies the call for duration tracking (HashKey of the Call-ID);
  /// `user_agent` may be empty when the header is absent.
  void OnCallStart(sim::Time now, std::string_view caller,
                   std::string_view dest, std::string_view user_agent,
                   uint64_t call_hash);
  /// A BYE request from `caller`. Closes the matching open call (if the
  /// caller's profile holds one younger than open_call_ttl) and records
  /// its duration.
  void OnCallEnd(sim::Time now, std::string_view caller, uint64_t call_hash);
  /// A 401/403/407 final to a REGISTER for `target`; `source_hash`
  /// identifies the registering client address.
  void OnRegFailure(sim::Time now, std::string_view target,
                    uint64_t source_hash);
  /// A 2xx final to a REGISTER for `target`: the streak breaks — failure
  /// window and source spread reset (a successful login is not a crack).
  void OnRegSuccess(sim::Time now, std::string_view target);

  /// Reclaims profiles idle past IdleHorizon() into the recycle pool.
  /// Memory-only by the determinism contract — callers may invoke this on
  /// any cadence (fact-base sweep listener, coordinator prune) without
  /// affecting emissions.
  void Sweep(sim::Time now);

  size_t profile_count() const { return callers_.size() + targets_.size(); }
  size_t pool_size() const { return pool_.size(); }
  uint64_t alerts_emitted() const { return alerts_emitted_; }
  uint64_t cooldown_suppressed() const { return cooldown_suppressed_; }
  size_t MemoryBytes() const;

  /// Folds every live profile's call-duration histogram (milliseconds,
  /// caller-terminated calls) plus the durations of already-reclaimed
  /// profiles into `into`.
  void MergeDurationHistogram(obs::Histogram& into) const;

  /// FNV-1a 64 — stable across processes (unlike std::hash), so two
  /// separately-run engines fed the same stream keep identical ring
  /// contents. Used for Call-ID, destination, and User-Agent identities.
  static uint64_t HashKey(std::string_view s) {
    uint64_t h = 1469598103934665603ULL;
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

 private:
  /// Armed-window counter (patterns.cpp BuildWindowCounter semantics): the
  /// first event arms a deadline; events inside increment; the first event
  /// at/after the deadline restarts the window. No timers — expiry is
  /// evaluated lazily against event time, which is what makes the counter
  /// sweep-independent.
  struct WindowCounter {
    int64_t count = 0;
    int64_t deadline_ns = INT64_MIN;
    int64_t window_start_ns = INT64_MIN;
    void Touch(int64_t t, int64_t window_ns) {
      if (t >= deadline_ns) {
        count = 1;
        window_start_ns = t;
        deadline_ns = t + window_ns;
      } else {
        ++count;
      }
    }
    int64_t Count(int64_t t) const { return t < deadline_ns ? count : 0; }
    void Reset() {
      count = 0;
      deadline_ns = INT64_MIN;
      window_start_ns = INT64_MIN;
    }
  };

  /// Fixed-slot distinct-identity window: remembers the last-seen time of
  /// up to N hashed identities; Count(t) = identities seen inside the
  /// window. Eviction replaces the stalest slot (expired slots are stalest
  /// by construction), so an over-threshold set is never silently
  /// undercounted until it exceeds N itself — thresholds must stay well
  /// under N.
  template <size_t N>
  struct DistinctWindow {
    struct Slot {
      uint64_t hash = 0;
      int64_t last_ns = INT64_MIN;
    };
    std::array<Slot, N> slots{};
    void Touch(uint64_t hash, int64_t t) {
      size_t stalest = 0;
      for (size_t i = 0; i < N; ++i) {
        if (slots[i].last_ns != INT64_MIN && slots[i].hash == hash) {
          slots[i].last_ns = t;
          return;
        }
        if (slots[i].last_ns < slots[stalest].last_ns) stalest = i;
      }
      slots[stalest].hash = hash;
      slots[stalest].last_ns = t;
    }
    int64_t Count(int64_t t, int64_t window_ns) const {
      int64_t n = 0;
      for (const Slot& s : slots) {
        if (s.last_ns != INT64_MIN && t - s.last_ns < window_ns) ++n;
      }
      return n;
    }
    void Reset() { slots.fill(Slot{}); }
  };

  struct OpenCall {
    uint64_t hash = 0;
    int64_t start_ns = INT64_MIN;  // INT64_MIN = empty slot
  };

  struct Profile {
    int64_t last_event_ns = INT64_MIN;
    int64_t last_alert_ns = INT64_MIN;
    // Caller features.
    WindowCounter call_rate;
    WindowCounter short_calls;
    DistinctWindow<64> fanout;
    DistinctWindow<8> user_agents;
    std::array<OpenCall, 16> open_calls{};
    obs::Histogram durations;  // ms; observability only, never scored
    // Registration-target features.
    WindowCounter reg_failures;
    DistinctWindow<32> reg_sources;

    void Reset();
  };

  template <typename T>
  using StringKeyed =
      std::unordered_map<std::string, T, common::StringHash, std::equal_to<>>;
  using ProfileMap = StringKeyed<std::unique_ptr<Profile>>;

  /// Existing profile or nullptr — the allocation-free steady-state probe.
  Profile* Find(ProfileMap& map, std::string_view key);
  /// Existing or pool-recycled/new profile (creation path).
  Profile& GetOrCreate(ProfileMap& map, std::string_view key);

  void ScoreCaller(Profile& profile, std::string_view caller, int64_t t);
  void ScoreTarget(Profile& profile, std::string_view target, int64_t t);
  void Emit(Profile& profile, std::string_view group_prefix,
            std::string_view entity, std::string_view classification,
            int64_t t, int64_t score, std::string detail);

  BehaviorConfig config_;
  AlertSink sink_;
  ProfileMap callers_;  // key = caller AOR (From user@host)
  ProfileMap targets_;  // key = registration target AOR (To user@host)
  std::vector<std::unique_ptr<Profile>> pool_;
  obs::Histogram retired_durations_;  // folded in from reclaimed profiles
  uint64_t alerts_emitted_ = 0;
  uint64_t cooldown_suppressed_ = 0;
};

}  // namespace vids::ids::behavior
