#include "vids/behavior/behavior.h"

#include <algorithm>
#include <utility>

namespace vids::ids::behavior {

namespace {

int64_t Over(int64_t value, int threshold) {
  return value > threshold ? value - threshold : 0;
}

void AppendFeature(std::string& out, std::string_view name, int64_t value,
                   int64_t contribution_milli, bool first) {
  if (!first) out += ", ";
  out += name;
  out += '=';
  out += std::to_string(value);
  out += ":+";
  out += std::to_string(contribution_milli);
}

}  // namespace

sim::Duration BehaviorConfig::IdleHorizon() const {
  sim::Duration horizon = call_rate_window;
  for (const sim::Duration d :
       {short_call_window, fanout_window, ua_window, reg_failure_window,
        alert_cooldown, open_call_ttl}) {
    if (d.nanos() > horizon.nanos()) horizon = d;
  }
  return horizon;
}

void BehaviorEngine::Profile::Reset() {
  last_event_ns = INT64_MIN;
  last_alert_ns = INT64_MIN;
  call_rate.Reset();
  short_calls.Reset();
  fanout.Reset();
  user_agents.Reset();
  open_calls.fill(OpenCall{});
  durations = obs::Histogram{};
  reg_failures.Reset();
  reg_sources.Reset();
}

BehaviorEngine::BehaviorEngine(const BehaviorConfig& config)
    : config_(config) {}

BehaviorEngine::Profile* BehaviorEngine::Find(ProfileMap& map,
                                              std::string_view key) {
  const auto it = map.find(key);
  return it == map.end() ? nullptr : it->second.get();
}

BehaviorEngine::Profile& BehaviorEngine::GetOrCreate(ProfileMap& map,
                                                     std::string_view key) {
  if (Profile* existing = Find(map, key)) return *existing;
  std::unique_ptr<Profile> profile;
  if (!pool_.empty()) {
    profile = std::move(pool_.back());
    pool_.pop_back();
  } else {
    profile = std::make_unique<Profile>();
  }
  return *map.emplace(std::string(key), std::move(profile)).first->second;
}

void BehaviorEngine::OnCallStart(sim::Time now, std::string_view caller,
                                 std::string_view dest,
                                 std::string_view user_agent,
                                 uint64_t call_hash) {
  if (!config_.enabled || caller.empty()) return;
  const int64_t t = now.nanos();
  Profile& p = GetOrCreate(callers_, caller);
  p.last_event_ns = t;
  p.call_rate.Touch(t, config_.call_rate_window.nanos());
  if (!dest.empty()) p.fanout.Touch(HashKey(dest), t);
  if (!user_agent.empty()) p.user_agents.Touch(HashKey(user_agent), t);

  // Open-call slot: a repeated initial INVITE (retransmission) refreshes
  // its start; otherwise take the stalest slot — empty and TTL-expired
  // slots are stalest by construction, and when none exist the oldest open
  // call is evicted (its BYE will simply record nothing).
  size_t stalest = 0;
  bool placed = false;
  for (size_t i = 0; i < p.open_calls.size(); ++i) {
    OpenCall& slot = p.open_calls[i];
    if (slot.start_ns != INT64_MIN && slot.hash == call_hash) {
      slot.start_ns = t;
      placed = true;
      break;
    }
    if (slot.start_ns < p.open_calls[stalest].start_ns) stalest = i;
  }
  if (!placed) {
    p.open_calls[stalest].hash = call_hash;
    p.open_calls[stalest].start_ns = t;
  }

  ScoreCaller(p, caller, t);
}

void BehaviorEngine::OnCallEnd(sim::Time now, std::string_view caller,
                               uint64_t call_hash) {
  if (!config_.enabled || caller.empty()) return;
  const int64_t t = now.nanos();
  Profile* p = Find(callers_, caller);
  if (p == nullptr) return;  // callee-sent BYE or long-idle caller
  p->last_event_ns = t;
  const int64_t ttl = config_.open_call_ttl.nanos();
  for (OpenCall& slot : p->open_calls) {
    if (slot.start_ns == INT64_MIN || slot.hash != call_hash) continue;
    if (t - slot.start_ns <= ttl) {
      const int64_t duration_ns = t - slot.start_ns;
      p->durations.Record(duration_ns / 1'000'000);  // ms
      if (duration_ns <= config_.short_call_max.nanos()) {
        p->short_calls.Touch(t, config_.short_call_window.nanos());
      }
    }
    slot = OpenCall{};
    break;
  }
  ScoreCaller(*p, caller, t);
}

void BehaviorEngine::OnRegFailure(sim::Time now, std::string_view target,
                                  uint64_t source_hash) {
  if (!config_.enabled || target.empty()) return;
  const int64_t t = now.nanos();
  Profile& p = GetOrCreate(targets_, target);
  p.last_event_ns = t;
  p.reg_failures.Touch(t, config_.reg_failure_window.nanos());
  p.reg_sources.Touch(source_hash, t);
  ScoreTarget(p, target, t);
}

void BehaviorEngine::OnRegSuccess(sim::Time now, std::string_view target) {
  if (!config_.enabled || target.empty()) return;
  // A successful registration breaks the cracking streak. Only an existing
  // profile matters — success with no failure history builds no state.
  Profile* p = Find(targets_, target);
  if (p == nullptr) return;
  p->last_event_ns = now.nanos();
  p->reg_failures.Reset();
  p->reg_sources.Reset();
}

void BehaviorEngine::ScoreCaller(Profile& p, std::string_view caller,
                                 int64_t t) {
  const int64_t rate = p.call_rate.Count(t);
  const int64_t shorts = p.short_calls.Count(t);
  const int64_t fanout = p.fanout.Count(t, config_.fanout_window.nanos());
  const int64_t uas = p.user_agents.Count(t, config_.ua_window.nanos());

  const int64_t c_rate =
      config_.weight_call_rate * Over(rate, config_.call_rate_threshold);
  const int64_t c_short =
      config_.weight_short_call * Over(shorts, config_.short_call_threshold);
  const int64_t c_fanout =
      config_.weight_fanout * Over(fanout, config_.fanout_threshold);
  const int64_t c_ua = config_.weight_ua * Over(uas, config_.ua_threshold);
  const int64_t score = c_rate + c_short + c_fanout + c_ua;
  if (score < config_.alert_score) return;
  if (p.last_alert_ns != INT64_MIN &&
      t - p.last_alert_ns < config_.alert_cooldown.nanos()) {
    ++cooldown_suppressed_;
    return;
  }

  // Classification by dominant evidence: burst-shaped features (rate,
  // short-call mass, UA rotation) read as SPIT; a fan-out-led score with a
  // quiet rate is the low-and-slow toll-fraud shape.
  const std::string_view classification =
      c_fanout > c_rate + c_short + c_ua ? kBehaviorTollFraud : kBehaviorSpit;

  std::string detail = "score=";
  detail += std::to_string(score);
  detail += " (";
  AppendFeature(detail, "calls", rate, c_rate, true);
  AppendFeature(detail, "short", shorts, c_short, false);
  AppendFeature(detail, "fanout", fanout, c_fanout, false);
  AppendFeature(detail, "ua", uas, c_ua, false);
  detail += ')';
  Emit(p, "caller|", caller, classification, t, score, std::move(detail));
}

void BehaviorEngine::ScoreTarget(Profile& p, std::string_view target,
                                 int64_t t) {
  const int64_t failures = p.reg_failures.Count(t);
  const int64_t sources =
      p.reg_sources.Count(t, config_.reg_failure_window.nanos());
  const int64_t c_fail =
      config_.weight_reg_failure * Over(failures, config_.reg_failure_threshold);
  const int64_t c_src =
      config_.weight_reg_source * Over(sources, config_.reg_source_threshold);
  const int64_t score = c_fail + c_src;
  if (score < config_.alert_score) return;
  if (p.last_alert_ns != INT64_MIN &&
      t - p.last_alert_ns < config_.alert_cooldown.nanos()) {
    ++cooldown_suppressed_;
    return;
  }

  std::string detail = "score=";
  detail += std::to_string(score);
  detail += " (";
  AppendFeature(detail, "reg_failures", failures, c_fail, true);
  AppendFeature(detail, "reg_sources", sources, c_src, false);
  detail += ')';
  Emit(p, "reg|", target, kBehaviorRegCracking, t, score, std::move(detail));
}

void BehaviorEngine::Emit(Profile& p, std::string_view group_prefix,
                          std::string_view entity,
                          std::string_view classification, int64_t t,
                          int64_t score, std::string detail) {
  p.last_alert_ns = t;
  ++alerts_emitted_;
  Alert alert;
  alert.when = sim::Time::FromNanos(t);
  alert.kind = AlertKind::kBehavior;
  alert.classification = std::string(classification);
  alert.machine = std::string(kBehaviorMachine);
  alert.group = std::string(group_prefix);
  alert.group += entity;
  alert.state = score >= config_.critical_score ? "critical" : "elevated";
  alert.detail = std::move(detail);
  alert.trigger = std::string(kBehaviorMachine) +
                  ": weighted profile score crossed the alert threshold";
  if (sink_) sink_(std::move(alert));
}

void BehaviorEngine::Sweep(sim::Time now) {
  const int64_t horizon = config_.IdleHorizon().nanos();
  const int64_t t = now.nanos();
  const auto reclaim = [&](ProfileMap& map) {
    for (auto it = map.begin(); it != map.end();) {
      Profile& p = *it->second;
      if (p.last_event_ns != INT64_MIN && t - p.last_event_ns <= horizon) {
        ++it;
        continue;
      }
      retired_durations_.MergeFrom(p.durations);
      if (pool_.size() < config_.profile_pool_cap) {
        p.Reset();
        pool_.push_back(std::move(it->second));
      }
      it = map.erase(it);
    }
  };
  reclaim(callers_);
  reclaim(targets_);
}

size_t BehaviorEngine::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  const auto count = [&](const ProfileMap& map) {
    for (const auto& [key, profile] : map) {
      bytes += key.capacity() + sizeof(Profile);
    }
  };
  count(callers_);
  count(targets_);
  bytes += pool_.size() * sizeof(Profile);
  return bytes;
}

void BehaviorEngine::MergeDurationHistogram(obs::Histogram& into) const {
  into.MergeFrom(retired_durations_);
  for (const auto& [key, profile] : callers_) {
    into.MergeFrom(profile->durations);
  }
}

}  // namespace vids::ids::behavior
