#include "vids/sharded_ids.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "rtp/rtcp.h"
#include "vids/classifier.h"
#include "vids/patterns.h"

namespace vids::ids {

namespace {

// Call-ID → shard. FNV-1a over the raw bytes: Call-IDs are adversarial
// input, but the partition only needs balance, not collision resistance —
// a skewed shard is a throughput problem, never a correctness one.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Endpoint key → shard. PackedKey is structured (ip << 16 | port), so mix
// it before taking the residue.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Field-wise copy that reuses the destination's string capacities — the
// ring-slot analog of the classifier's AssignStr.
void AssignAlert(Alert& dst, const Alert& src) {
  dst.when = src.when;
  dst.kind = src.kind;
  dst.classification.assign(src.classification);
  dst.machine.assign(src.machine);
  dst.group.assign(src.group);
  dst.state.assign(src.state);
  dst.detail.assign(src.detail);
  dst.provenance.resize(src.provenance.size());
  for (size_t i = 0; i < src.provenance.size(); ++i) {
    dst.provenance[i].assign(src.provenance[i]);
  }
}

// Hard cap on a shard's held-back aggregate events. A flood that outruns
// agg_hold aging forces a full ship instead of unbounded staging growth.
constexpr size_t kMaxHeldAggEvents = 1024;

int64_t MinOf(const std::vector<int64_t>& values) {
  int64_t m = INT64_MAX;
  for (const int64_t v : values) m = std::min(m, v);
  return m;
}

}  // namespace

// ------------------------------------------------------------ ingest port

ShardedIds::IngestPort::IngestPort(ShardedIds& engine, int index)
    : engine_(engine),
      index_(index),
      lane_open_ns_(static_cast<size_t>(engine.config_.shards), INT64_MAX),
      lane_hwm_(static_cast<size_t>(engine.config_.shards), 0),
      lane_stalls_(static_cast<size_t>(engine.config_.shards), 0),
      m_stalls_(&metrics_.GetCounter("sharded.ingest_stalls")),
      m_sip_routed_(&metrics_.GetCounter("sharded.sip_routed")),
      m_owner_routed_(&metrics_.GetCounter("sharded.endpoint_owner_routed")),
      m_hash_routed_(&metrics_.GetCounter("sharded.endpoint_hash_routed")),
      m_early_retracts_(
          &metrics_.GetCounter("sharded.early_media_retracts")),
      m_retracts_(&metrics_.GetCounter("sharded.ownership_transfers")),
      m_route_escalations_(
          &metrics_.GetCounter("sharded.route_escalations")),
      m_stale_claims_(
          &metrics_.GetCounter("sharded.stale_claims_dropped")),
      m_flush_full_(&metrics_.GetCounter("pipeline.flush.full")),
      m_flush_deadline_(&metrics_.GetCounter("pipeline.flush.deadline")),
      m_flush_barrier_(&metrics_.GetCounter("pipeline.flush.barrier")),
      m_batch_committed_(&metrics_.GetHistogram("pipeline.batch.committed")) {}

void ShardedIds::IngestPort::Ingest(const net::Datagram& dgram,
                                    bool from_outside, sim::Time when,
                                    uint64_t seq) {
  engine_.IngestOn(*this, dgram, from_outside, when, seq);
}

void ShardedIds::IngestPort::Ingest(const net::Datagram& dgram,
                                    bool from_outside, sim::Time when) {
  engine_.IngestOn(*this, dgram, from_outside, when, auto_seq_++);
}

void ShardedIds::IngestPort::Heartbeat(sim::Time when) {
  engine_.PortHeartbeat(*this, when);
}

void ShardedIds::IngestPort::Close() { engine_.PortClose(*this); }

// ------------------------------------------------------------ construction

ShardedIds::ShardedIds(ShardedConfig config)
    : config_(config),
      behavior_(config_.detection.behavior),
      m_agg_events_(&coord_metrics_.GetCounter("sharded.agg_events")),
      m_coord_alerts_(&coord_metrics_.GetCounter("sharded.coord_alerts")),
      m_coord_suppressed_(
          &coord_metrics_.GetCounter("sharded.coord_alerts_suppressed")),
      m_flushes_(&coord_metrics_.GetCounter("sharded.flushes")),
      m_escalations_(&coord_metrics_.GetCounter("sharded.agg_escalations")),
      m_watchdog_stalls_(
          &coord_metrics_.GetCounter("sharded.watchdog_stalls")),
      m_watchdog_producer_stalls_(
          &coord_metrics_.GetCounter("sharded.watchdog_producer_stalls")),
      m_flush_full_(&coord_metrics_.GetCounter("pipeline.flush.full")),
      m_flush_barrier_(&coord_metrics_.GetCounter("pipeline.flush.barrier")),
      m_batch_committed_(
          &coord_metrics_.GetHistogram("pipeline.batch.committed")) {
  // The ownership table packs the shard index into 8 bits.
  config_.shards = std::clamp(config_.shards, 1, 255);
  config_.producers = std::max(1, config_.producers);
  config_.batch_max = std::max<size_t>(1, config_.batch_max);
  const int n = config_.shards;
  owner_table_ = std::make_unique<MediaOwnerTable>(1024);
  if (config_.trace_sample_period > 0) {
    uint32_t period = 1;
    while (period < config_.trace_sample_period) period <<= 1;
    trace_on_ = true;
    trace_mask_ = period - 1;
  }
  // Behavioral alerts from the replay-fed coordinator engine enter the
  // retained history through the same canonical insert as every replayed
  // aggregate alert. The engine's own cooldown is the only dedup — exactly
  // like the plain engine, where RaiseAlert's window never fires on them.
  behavior_.set_alert_sink([this](Alert&& alert) {
    m_coord_alerts_->Inc();
    EmitAlert(std::move(alert));
  });
  watchdog_threshold_ns_ = config_.watchdog_stall_ms * 1'000'000;
  // Poll well inside the deadline (threshold/8, floor 1 ms) so an episode
  // accrues several consecutive checks before it can alert — the
  // continuity guard in WatchdogCheck() needs at least two.
  watchdog_poll_ns_ =
      std::max<int64_t>(watchdog_threshold_ns_ / 8, 1'000'000);
  health_.resize(static_cast<size_t>(n));
  // Escalation share: by pigeonhole, if a key sees more than `threshold`
  // events inside one window globally, some shard saw at least
  // ceil((threshold + 1) / shards) of them — so a shard whose local sketch
  // holds that many events within a window-span knows the key could be in
  // an over-threshold window and turns it hot. Fractions below 1.0 shrink
  // the share (earlier escalation, more eager shipping); above 1.0 would
  // let a real flood hide below every shard's share, so clamp.
  const double frac = std::clamp(config_.agg_escalation_fraction, 0.0, 1.0);
  const auto share = [&](int threshold) {
    const double target =
        frac * static_cast<double>(threshold + 1) / static_cast<double>(n);
    return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(target)));
  };
  esc_invite_share_ = share(config_.detection.invite_flood_threshold);
  esc_drdos_share_ = share(config_.detection.drdos_threshold);

  pending_.resize(static_cast<size_t>(n));
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(config_.producers,
                                         config_.ring_capacity,
                                         config_.arena_slot_bytes);
    shard->index = i;
    shard->scheduler = std::make_unique<sim::Scheduler>();
    shard->vids = std::make_unique<Vids>(*shard->scheduler, config_.detection,
                                         config_.cost);
    // The coordinator keeps the merged history; the shard only needs enough
    // retained tail for its own internal bookkeeping.
    shard->vids->set_max_retained_alerts(4);
    // Resolve the worker's pipeline metric slots now, before its thread
    // starts — from then on a Record() is a plain array increment into the
    // worker-private registry (no cross-shard atomics, no lookups).
    shard->lat_ingest_to_dequeue =
        &shard->pipeline.GetHistogram("lat.ingest_to_dequeue");
    shard->lat_inspect = &shard->pipeline.GetHistogram("lat.inspect");
    shard->lat_e2e = &shard->pipeline.GetHistogram("lat.e2e");
    shard->lat_ingest_to_alert =
        &shard->pipeline.GetHistogram("lat.ingest_to_alert");
    shard->batch_consumed = &shard->pipeline.GetHistogram("batch.consumed");
    Shard* sp = shard.get();
    shard->vids->set_alert_callback([this, sp](const Alert& alert) {
      // A sampled packet that alerted: the open span's enqueue time is
      // still posted, so the emit stage of the trail gets its latency.
      if (sp->span_open_enqueue_ns != 0) {
        sp->lat_ingest_to_alert->Record(obs::MonotonicNanos() -
                                        sp->span_open_enqueue_ns);
      }
      PushUp(*sp, [&](UpMsg& up) {
        up.kind = UpMsg::Kind::kAlert;
        up.when_ns = alert.when.nanos();
        AssignAlert(up.alert, alert);
      });
    });
    // Always hook the aggregate feeds — even with one shard — so flood and
    // DRDoS detection take the identical (replayed) code path for every
    // shard count. Equivalence across N is then true by construction.
    shard->vids->set_aggregate_hook(
        [this, sp](Vids::AggregateKind kind, std::string_view key,
                   const ClassifiedPacket& packet) {
          const std::string* src = packet.event.ArgStr(argkey::kSrcIp);
          const std::string* dst = packet.event.ArgStr(argkey::kDstIp);
          // Behavior kinds carry their per-kind extras: the call-start peer
          // (destination AOR) and User-Agent, and an aux word — the call-key
          // hash for start/end (BYE↔INVITE pairing) or the registering
          // client's IP bits for auth failures (source diversity).
          std::string_view peer;
          std::string_view ua;
          uint64_t aux = 0;
          switch (kind) {
            case Vids::AggregateKind::kBehaviorCallStart: {
              peer = packet.dest_key;
              if (const std::string* s =
                      packet.event.ArgStr(argkey::kUserAgent)) {
                ua = *s;
              }
              aux = behavior::BehaviorEngine::HashKey(packet.call_key);
              break;
            }
            case Vids::AggregateKind::kBehaviorCallEnd:
              aux = behavior::BehaviorEngine::HashKey(packet.call_key);
              break;
            case Vids::AggregateKind::kBehaviorRegFailure:
              aux = static_cast<uint64_t>(packet.dst.ip.bits());
              break;
            default:
              break;
          }
          // Dest AOR (INVITE flood), dotted victim IP (DRDoS) or profiled
          // entity AOR (behavior) — the hook contract guarantees the key is
          // populated for all kinds.
          BufferAggEvent(
              *sp, kind, key,
              src != nullptr ? std::string_view(*src) : std::string_view(),
              dst != nullptr ? std::string_view(*dst) : std::string_view(),
              peer, ua, aux);
        });
    shards_.push_back(std::move(shard));
  }
  // Ports before workers: the merge gate reads ports_[p]->frontier_.
  ports_.reserve(static_cast<size_t>(config_.producers));
  for (int p = 0; p < config_.producers; ++p) {
    ports_.push_back(
        std::unique_ptr<IngestPort>(new IngestPort(*this, p)));
  }
  // Single-producer engines keep the PR 5 contract: port 0 runs on the
  // coordinator thread, so its backpressure wait may (must) drain upstream.
  ports_[0]->inline_drain_ = config_.producers == 1;
  for (auto& shard : shards_) {
    Shard* sp = shard.get();
    sp->thread = std::thread([this, sp] { WorkerLoop(*sp); });
  }
}

ShardedIds::~ShardedIds() { Stop(); }

// ------------------------------------------------------------- worker side

template <typename Fill>
void ShardedIds::PushUp(Shard& shard, Fill&& fill) {
  UpMsg* slot = shard.up.BeginPushN();
  if (slot == nullptr) {
    // Publish whatever the open batch holds — the coordinator can only
    // free slots it can see — then wait for room. The coordinator drains
    // up-rings whenever it waits on a full control lane and while it waits
    // in Flush()/Stop(), so this cannot deadlock against a blocked
    // producer. It can still be a long wait if the driver thread goes
    // quiet between Ingest/Pump calls — back off to a short sleep instead
    // of spinning.
    shard.up.CommitPushN();
    common::SpinBackoff backoff(config_.idle_spins, config_.idle_sleep_us);
    do {
      ++shard.up_stalls;
      backoff.Pause();
      slot = shard.up.BeginPushN();
    } while (slot == nullptr);
  }
  fill(*slot);
  if (const auto depth = static_cast<uint64_t>(shard.up.SizeFromProducer());
      depth > shard.up_hwm) {
    shard.up_hwm = depth;
  }
  // No commit here: WorkerLoop publishes the whole batch of upstream
  // messages with one release store at batch end.
}

void ShardedIds::RecordSpan(Shard& shard, int64_t t0, int64_t t_dequeue) {
  const int64_t t_done = obs::MonotonicNanos();
  shard.lat_ingest_to_dequeue->Record(t_dequeue - t0);
  shard.lat_inspect->Record(t_done - t_dequeue);
  shard.lat_e2e->Record(t_done - t0);
  obs::Record rec;
  rec.type = obs::RecordType::kSpan;
  rec.when_ns = t0;
  rec.aux = static_cast<uint64_t>(t_done - t0);
  const auto micros = [](int64_t ns, int64_t cap) {
    const int64_t us = ns / 1000;
    return us > cap ? cap : (us < 0 ? int64_t{0} : us);
  };
  rec.a = static_cast<uint16_t>(micros(t_dequeue - t0, 65535));
  rec.from = static_cast<int16_t>(micros(t_done - t_dequeue, 32767));
  rec.to = static_cast<int16_t>(shard.index);
  shard.spans.Record(rec);
}

void ShardedIds::BufferAggEvent(Shard& shard, Vids::AggregateKind kind,
                                std::string_view key, std::string_view src_ip,
                                std::string_view dst_ip, std::string_view peer,
                                std::string_view ua, uint64_t aux) {
  AggLocal& a = shard.agg;
  const int64_t t = shard.scheduler->Now().nanos();

  // Stage the event. Retired slots keep their string capacities; compact
  // by sliding the live tail down (swap, not copy) so the vector's size is
  // bounded by the peak number of simultaneously-held events.
  if (a.end == a.buf.size() && a.begin > 0) {
    const size_t live = a.live();
    for (size_t i = 0; i < live; ++i) {
      HeldAggEvent& dst = a.buf[i];
      HeldAggEvent& src = a.buf[a.begin + i];
      dst.when_ns = src.when_ns;
      dst.kind = src.kind;
      dst.key.swap(src.key);
      dst.src_ip.swap(src.src_ip);
      dst.dst_ip.swap(src.dst_ip);
      dst.peer.swap(src.peer);
      dst.ua.swap(src.ua);
      dst.aux = src.aux;
    }
    a.begin = 0;
    a.end = live;
  }
  if (a.end == a.buf.size()) a.buf.emplace_back();
  HeldAggEvent& e = a.buf[a.end++];
  e.when_ns = t;
  e.kind = kind;
  e.key.assign(key);
  e.src_ip.assign(src_ip);
  e.dst_ip.assign(dst_ip);
  e.peer.assign(peer);
  e.ua.assign(ua);
  e.aux = aux;
  ++a.events_buffered;
  if (a.live() > kMaxHeldAggEvents) {
    ShipAggPrefix(shard, t);  // ships everything: `t` is the newest time
  }

  // Behavior events never escalate: the escalation sketches exist to cut
  // the ship latency of keys that might cross a flood/DRDoS threshold, and
  // hotness only affects ship latency, never which events ship — profile
  // scoring happens solely on the coordinator after the ordered replay.
  if (kind != Vids::AggregateKind::kUnsolicitedResponse &&
      kind != Vids::AggregateKind::kInviteRequest) {
    return;
  }

  // Sliding sketch: record the key's last `share` event times; when all of
  // them (including this one) fall inside one window-span, escalate.
  const bool invite = kind == Vids::AggregateKind::kInviteRequest;
  auto& sketches = invite ? a.invite_sketch : a.drdos_sketch;
  const size_t share =
      static_cast<size_t>(invite ? esc_invite_share_ : esc_drdos_share_);
  const int64_t window_ns = (invite ? config_.detection.invite_flood_window
                                    : config_.detection.drdos_window)
                                .nanos();
  auto it = sketches.find(key);
  if (it == sketches.end()) {
    it = sketches.emplace(std::string(key), AggSketch{}).first;
  }
  AggSketch& s = it->second;
  s.last_event_ns = t;
  if (s.hot) return;
  if (s.recent.size() != share) s.recent.assign(share, INT64_MIN);
  s.recent[s.next] = t;
  s.next = (s.next + 1) % share;
  // After the insert, recent[next] is the oldest of the stored `share`
  // times; all of them within (t - window, t] means the local count alone
  // could be part of a globally over-threshold window.
  const int64_t oldest = s.recent[s.next];
  if (oldest == INT64_MIN || oldest <= t - window_ns) return;
  s.hot = true;
  ++a.hot_keys;
  PushUp(shard, [&](UpMsg& up) {
    up.kind = UpMsg::Kind::kAggHot;
    up.when_ns = t;
    up.agg = kind;
    up.key.assign(key);
    up.src_ip.clear();
    up.dst_ip.clear();
    up.peer.clear();
    up.ua.clear();
    up.aux = 0;
  });
}

void ShardedIds::ShipAggPrefix(Shard& shard, int64_t horizon) {
  AggLocal& a = shard.agg;
  while (a.begin < a.end && a.buf[a.begin].when_ns <= horizon) {
    const HeldAggEvent& e = a.buf[a.begin];
    PushUp(shard, [&](UpMsg& up) {
      up.kind = UpMsg::Kind::kAgg;
      up.when_ns = e.when_ns;
      up.agg = e.kind;
      up.key.assign(e.key);
      up.src_ip.assign(e.src_ip);
      up.dst_ip.assign(e.dst_ip);
      up.peer.assign(e.peer);
      up.ua.assign(e.ua);
      up.aux = e.aux;
    });
    ++a.begin;
    ++a.events_shipped;
  }
  if (a.begin == a.end) {
    a.begin = 0;
    a.end = 0;
  }
}

void ShardedIds::PruneAggSketches(Shard& shard, int64_t now_ns) {
  // Mirror the coordinator's window pruning: a sketch idle past the keyed
  // horizon can restart cold (hot keys cool down — hotness only affects
  // ship latency, never which events ship, so cooling is always safe).
  const int64_t idle_ns = config_.detection.keyed_idle_timeout.nanos();
  const auto prune = [&](StringKeyed<AggSketch>& sketches) {
    std::erase_if(sketches, [&](const auto& kv) {
      const AggSketch& s = kv.second;
      if (now_ns - s.last_event_ns <= idle_ns) return false;
      if (s.hot) --shard.agg.hot_keys;
      return true;
    });
  };
  prune(shard.agg.invite_sketch);
  prune(shard.agg.drdos_sketch);
}

bool ShardedIds::LanesQuiescent(Shard& shard, int64_t barrier_ns) {
  for (size_t p = 0; p < shard.lanes.size(); ++p) {
    // Frontier first (acquire), then the emptiness re-check: everything
    // the frontier vouches for was committed before its release store, so
    // "frontier past the barrier AND lane empty" proves nothing at or
    // before the barrier is still in flight on this lane.
    if (ports_[p]->frontier_.load(std::memory_order_acquire) < barrier_ns) {
      return false;
    }
    if (shard.lanes[p]->ring.FrontN(1) != 0) return false;
  }
  return true;
}

void ShardedIds::ProcessLaneMsg(Shard& shard, Lane& lane, size_t at,
                                ShardMsg& msg, net::Datagram& scratch,
                                int64_t& watermark) {
  const sim::Time when = sim::Time::FromNanos(msg.when_ns);
  if (msg.kind == ShardMsg::Kind::kPacket) {
    // Sampled span: note the dequeue time and post the enqueue time where
    // the alert callback can see it. Unsampled packets (and the
    // sampling-off configuration) take one never-true branch.
    const int64_t span_t0 = msg.span_enqueue_ns;
    int64_t span_dequeue = 0;
    if (span_t0 != 0) {
      span_dequeue = obs::MonotonicNanos();
      shard.span_open_enqueue_ns = span_t0;
    }
    scratch.src = msg.dgram.src;
    scratch.dst = msg.dgram.dst;
    scratch.kind = msg.dgram.kind;
    scratch.padding_bytes = msg.dgram.padding_bytes;
    scratch.sent_time = msg.dgram.sent_time;
    scratch.id = msg.dgram.id;
    if (msg.in_arena) {
      // The payload bytes live in the lane's arena slot (same index as the
      // ring slot) — one contiguous slab the producer memcpy'd into.
      scratch.payload.assign(lane.arena.Slot(lane.ring.ConsumerIndex(at)),
                             msg.arena_len);
    } else {
      // Oversized payload took the slot-string path. Swap, don't copy: the
      // slot inherits the scratch's warm buffer for the producer's next
      // assign.
      scratch.payload.swap(msg.dgram.payload);
    }
    // Advance this shard's private clock so detection timers (flood
    // windows, RTCP grace, sweeps) fire exactly as in the single engine:
    // all events <= `when` run before the packet is inspected, matching
    // the scheduler's timer-before-same-time-packet order.
    AdvanceShardClock(shard, when);
    shard.vids->Inspect(scratch, msg.from_outside);
    if (span_t0 != 0) {
      RecordSpan(shard, span_t0, span_dequeue);
      shard.span_open_enqueue_ns = 0;
    }
    watermark = std::max(watermark, msg.when_ns);
  } else {  // kRetractMedia
    AdvanceShardClock(shard, when);
    // This shard lost ownership of the endpoint: drop both the media index
    // binding and the per-endpoint keyed counters, so exactly one shard
    // counts the stream from the claim onward. Retracting an endpoint this
    // shard never bound is a no-op, which is what makes the stale-claim
    // double edges of MediaOwnerTable::ApplyClaim idempotent.
    shard.vids->fact_base().RetractMedia(msg.endpoint);
    shard.vids->fact_base().DropMediaKeyedGroup(msg.endpoint);
    watermark = std::max(watermark, msg.when_ns);
  }
}

void ShardedIds::WorkerLoop(Shard& shard) {
  net::Datagram scratch;
  common::SpinBackoff backoff(config_.idle_spins, config_.idle_sleep_us);
  const size_t batch_max = config_.batch_max;
  const int64_t hold_ns = config_.agg_hold.nanos();
  // Heartbeats only exist for the watchdog; the disabled configuration
  // (BM_ShardedIngest's pinned hot path) never reads the wall clock here.
  const bool heartbeat = watchdog_threshold_ns_ > 0;
  const size_t lanes_n = shard.lanes.size();
  std::vector<size_t> avail(lanes_n, 0);
  std::vector<size_t> taken(lanes_n, 0);
  int64_t watermark = 0;
  bool stopping = false;
  while (!stopping) {
    bool progress = false;
    int stall_lane = -1;

    // ---- control lane: barriers, hot-key broadcasts, test wedges ----
    while (ShardMsg* ctl = shard.down.Front()) {
      if (ctl->kind == ShardMsg::Kind::kAggHot) {
        // Some shard escalated this key: bypass the hold locally too, so
        // this shard's frontier keeps pace and the coordinator's merged
        // replay of the hot key is not gated on our cold buffer.
        const bool invite = ctl->agg == Vids::AggregateKind::kInviteRequest;
        auto& sketches =
            invite ? shard.agg.invite_sketch : shard.agg.drdos_sketch;
        auto it = sketches.find(ctl->key);
        if (it == sketches.end()) {
          it = sketches.emplace(ctl->key, AggSketch{}).first;
        }
        AggSketch& s = it->second;
        if (!s.hot) {
          s.hot = true;
          ++shard.agg.hot_keys;
        }
        s.last_event_ns = std::max(s.last_event_ns, ctl->when_ns);
        shard.down.Pop();
        progress = true;
        continue;
      }
      if (ctl->kind == ShardMsg::Kind::kWedge) {
        // Deliberate stall (tests): sleep before retiring the message. The
        // control lane stays non-empty and the heartbeat store below is
        // not reached — exactly the state the watchdog must detect, with
        // waiting_on_lane still -1 (a wedged WORKER, not a producer).
        while (shard.wedged.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        shard.down.Pop();
        progress = true;
        continue;
      }
      // kFlush / kStop: barriers logically ORDERED AFTER every ingest-lane
      // message — honor them only once every lane is drained and every
      // producer frontier has passed the barrier (Flush()/Stop() force the
      // frontiers forward under the quiescent-ports contract).
      const int64_t barrier =
          ctl->kind == ShardMsg::Kind::kFlush ? ctl->when_ns : INT64_MAX;
      if (!LanesQuiescent(shard, barrier)) break;
      if (ctl->kind == ShardMsg::Kind::kFlush) {
        AdvanceShardClock(shard, sim::Time::FromNanos(ctl->when_ns));
        // The barrier promises every aggregate event up to `when` is
        // replayable: ship the whole staging buffer before the ack.
        ShipAggPrefix(shard, INT64_MAX);
        PruneAggSketches(shard, ctl->when_ns);
        PushUp(shard, [&](UpMsg& up) {
          up.kind = UpMsg::Kind::kFlushAck;
          up.when_ns = ctl->when_ns;
          up.token = ctl->token;
        });
        watermark = std::max(watermark, ctl->when_ns);
        shard.down.Pop();
        progress = true;
        continue;
      }
      // kStop: final ship so Stop()'s terminal replay sees every event.
      ShipAggPrefix(shard, INT64_MAX);
      stopping = true;
      shard.down.Pop();
      progress = true;
      break;
    }

    // ---- ingest lanes: (when, seq)-ordered merge across producers ----
    size_t consumed = 0;
    if (!stopping) {
      for (size_t p = 0; p < lanes_n; ++p) {
        avail[p] = shard.lanes[p]->ring.FrontN(batch_max);
        taken[p] = 0;
      }
      while (consumed < batch_max) {
        // Minimal (when, seq) over the lanes' unconsumed fronts. seq is a
        // global arrival number, so this reproduces the single-producer
        // delivery order exactly.
        size_t best = lanes_n;
        int64_t best_when = 0;
        uint64_t best_seq = 0;
        for (size_t p = 0; p < lanes_n; ++p) {
          if (taken[p] >= avail[p]) continue;
          const ShardMsg& m = shard.lanes[p]->ring.At(taken[p]);
          if (best == lanes_n || m.when_ns < best_when ||
              (m.when_ns == best_when && m.seq < best_seq)) {
            best = p;
            best_when = m.when_ns;
            best_seq = m.seq;
          }
        }
        if (best == lanes_n) break;  // every lane visibly empty
        // A visibly-empty lane may still hold an earlier message: avail[]
        // is a batch-start snapshot, and the frontier's promise covers
        // only FUTURE pushes (strictly later than f) — never commits that
        // landed since the snapshot. So for every exhausted lane, load
        // the frontier first (acquire — every commit it vouches for is
        // visible after this), then ALWAYS re-read the ring. New arrivals
        // re-enter the pick; only a fresh empty verdict makes the vouch
        // sound, and a fresh-empty lane whose frontier is still short of
        // the candidate gates the merge.
        bool gated = false;
        bool refreshed = false;
        for (size_t p = 0; p < lanes_n; ++p) {
          if (taken[p] < avail[p]) continue;
          const int64_t f =
              ports_[p]->frontier_.load(std::memory_order_acquire);
          const size_t now_avail = shard.lanes[p]->ring.FrontN(batch_max);
          if (now_avail > taken[p]) {
            avail[p] = now_avail;
            refreshed = true;
          } else if (best_when > f) {
            stall_lane = static_cast<int>(p);
            gated = true;
            break;
          }
        }
        if (gated) break;
        if (refreshed) continue;  // re-pick including the new arrivals
        Lane& lane = *shard.lanes[best];
        ProcessLaneMsg(shard, lane, taken[best], lane.ring.At(taken[best]),
                       scratch, watermark);
        ++taken[best];
        ++consumed;
      }
      for (size_t p = 0; p < lanes_n; ++p) {
        if (taken[p] != 0) shard.lanes[p]->ring.PopN(taken[p]);
      }
    }

    if (consumed != 0 || progress) {
      if (!stopping && shard.agg.live() != 0) {
        // Cold events age out after agg_hold; while any key is hot the
        // whole buffer ships every batch so replay tracks the frontier.
        ShipAggPrefix(shard, shard.agg.hot_keys > 0 ? watermark
                                                    : watermark - hold_ns);
      }
      // Worker-owned plain metric fields must be written before the commit
      // below: the coordinator reads `shard.pipeline` after acquiring the
      // flush ack published by this very batch.
      if (consumed != 0) {
        shard.batch_consumed->Record(static_cast<int64_t>(consumed));
      }
      // One release store publishes every upstream message of this round
      // (alerts, aggregate ships, escalations, acks) ...
      shard.up.CommitPushN();
      // ... then the frontiers. agg_complete first: the events it vouches
      // for are already committed above, so an acquire read that observes
      // the new frontier also observes them in the ring (DESIGN.md §12).
      const int64_t agg_complete =
          shard.agg.live() == 0
              ? watermark
              : shard.agg.buf[shard.agg.begin].when_ns - 1;
      shard.agg_complete_ns.store(agg_complete, std::memory_order_release);
      shard.processed_ns.store(watermark, std::memory_order_release);
      // Heartbeat last: it vouches for the whole retired round. A worker
      // that wedges or blocks mid-batch never reaches this store.
      if (heartbeat) {
        shard.last_progress_ns.store(obs::MonotonicNanos(),
                                     std::memory_order_release);
      }
      shard.waiting_on_lane.store(-1, std::memory_order_relaxed);
      backoff.Reset();
    } else {
      // No work retired. Publish what (if anything) the merge is blocked
      // on so the watchdog can tell a stalled producer from a stalled
      // worker, and back off.
      shard.waiting_on_lane.store(stall_lane, std::memory_order_relaxed);
      backoff.Pause();
    }
  }
  // After this store no further up-messages are pushed; Stop() drains
  // until every worker has raised it, then joins.
  shard.done.store(true, std::memory_order_release);
}

void ShardedIds::AdvanceShardClock(Shard& shard, sim::Time when) {
  sim::Scheduler& scheduler = *shard.scheduler;
  if (when <= scheduler.Now()) return;
  if (watchdog_threshold_ns_ == 0) {
    scheduler.RunUntil(when);
    return;
  }
  // Catch-up slicing. A capture gap (idle tap, faster-than-real-time
  // pcap/trace replay) can put hours of simulated time between two ring
  // messages, and every sweep/timer inside the gap runs here — mid-batch,
  // before the post-batch heartbeat store is reached. One monolithic
  // RunUntil would freeze the heartbeat for the whole catch-up and let the
  // watchdog mis-score genuine progress as a wedged worker. Bounded slices
  // keep both progress signals live: the wall-clock heartbeat and the
  // source-time frontier (processed_ns), which WatchdogCheck uses to
  // re-anchor open episodes.
  constexpr int64_t kSliceNs = 60'000'000'000;  // one simulated minute
  while (when.nanos() - scheduler.Now().nanos() > kSliceNs) {
    scheduler.RunUntil(scheduler.Now() + sim::Duration::Nanos(kSliceNs));
    shard.processed_ns.store(scheduler.Now().nanos(),
                             std::memory_order_release);
    shard.last_progress_ns.store(obs::MonotonicNanos(),
                                 std::memory_order_release);
  }
  scheduler.RunUntil(when);
}

// ----------------------------------------------------- producer-side routing

void ShardedIds::PublishFrontier(IngestPort& port, int64_t candidate_ns) {
  // Strict semantics: frontier F promises every future committed message
  // has when_ns > F. A port that has seen (or promised) nothing earlier
  // than `candidate` may publish candidate − 1 — it might still push AT
  // candidate. INT64_MAX is terminal (Close/Stop).
  const int64_t f =
      candidate_ns == INT64_MAX ? INT64_MAX : candidate_ns - 1;
  if (f > port.frontier_.load(std::memory_order_relaxed)) {
    port.frontier_.store(f, std::memory_order_release);
  }
}

int ShardedIds::ShardOfCallId(std::string_view call_id) const {
  return static_cast<int>(Fnv1a(call_id) % shards_.size());
}

int ShardedIds::HashShardOfEndpoint(uint64_t packed_key) const {
  return static_cast<int>(SplitMix64(packed_key) % shards_.size());
}

int ShardedIds::RouteEndpoint(IngestPort& port, const net::Endpoint& endpoint,
                              int64_t when_ns, uint64_t seq) {
  // Under the claim-ordered ingest contract every claim sequenced before
  // this packet is already in the table; the seq-keyed lookup filters out
  // any later-sequenced claim another producer applied early, so the
  // answer is exactly the single-producer one.
  bool pre_history = false;
  const int owner =
      owner_table_->OwnerAt(endpoint.PackedKey(), when_ns, seq, pre_history);
  if (owner >= 0) {
    port.m_owner_routed_->Inc();
    return owner;
  }
  // Pre-history: the entry exists but both recorded claim eras postdate
  // this packet (>2 claims landed between this packet's arrival and its
  // routing) — the bounded slow path; the packet hash-routes like
  // unnegotiated media.
  if (pre_history) port.m_route_escalations_->Inc();
  port.m_hash_routed_->Inc();
  return HashShardOfEndpoint(endpoint.PackedKey());
}

void ShardedIds::SnoopSdp(IngestPort& port, std::string_view body, int shard,
                          int64_t when_ns, uint64_t seq) {
  // Line scan for "c=... <ip>" / "m=audio <port>". This mirrors what the
  // shard-side classifier will extract; the router only needs the endpoint
  // → shard binding, not a full SDP model.
  std::optional<net::IpAddress> ip;
  size_t pos = 0;
  while (pos <= body.size()) {
    const size_t eol = body.find('\n', pos);
    std::string_view line =
        body.substr(pos, (eol == std::string_view::npos ? body.size() : eol) -
                             pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > 2 && line[0] == 'c' && line[1] == '=') {
      // "c=IN IP4 10.0.0.1" — the address is the last token.
      const size_t sp = line.rfind(' ');
      if (sp != std::string_view::npos) {
        ip = net::IpAddress::Parse(line.substr(sp + 1));
      }
    } else if (line.rfind("m=audio ", 0) == 0) {
      uint32_t media_port = 0;
      for (size_t i = 8; i < line.size() && line[i] >= '0' && line[i] <= '9';
           ++i) {
        media_port = media_port * 10 + static_cast<uint32_t>(line[i] - '0');
        if (media_port > 65535) break;
      }
      if (ip.has_value() && media_port > 0 && media_port <= 65535) {
        const net::Endpoint endpoint{*ip,
                                     static_cast<uint16_t>(media_port)};
        const uint64_t key = endpoint.PackedKey();
        const int hash_shard = HashShardOfEndpoint(key);
        // Apply the claim to the shared table; whatever ownership edges it
        // creates (first-claim early retract, renegotiation handover, or
        // the double edge of a stale claim another producer outran) ride
        // THIS port's lanes at THIS packet's (when, seq) — the worker's
        // merge orders them exactly where the claim sits in the global
        // arrival order, and a retract for an endpoint a shard never bound
        // is a no-op, so every losing shard is retracted exactly once.
        const MediaOwnerTable::ClaimResult r =
            owner_table_->ApplyClaim(key, shard, when_ns, seq, hash_shard);
        if (r.dropped_stale) port.m_stale_claims_->Inc();
        for (int e = 0; e < r.edge_count; ++e) {
          const MediaOwnerTable::RetractEdge edge = r.edges[e];
          if (edge.early) {
            port.m_early_retracts_->Inc();
          } else {
            port.m_retracts_->Inc();
          }
          PushLane(port, edge.shard, [&](ShardMsg& msg, Lane&, size_t) {
            msg.kind = ShardMsg::Kind::kRetractMedia;
            msg.when_ns = when_ns;
            msg.seq = seq;
            msg.endpoint = endpoint;
          });
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
}

template <typename Fill>
void ShardedIds::PushLane(IngestPort& port, int shard_index, Fill&& fill) {
  Lane& lane =
      *shards_[static_cast<size_t>(shard_index)]->lanes[static_cast<size_t>(
          port.index_)];
  // The arena slot paired with the slot BeginPushN hands out. Stable across
  // the backpressure commit below (committing does not move tail+pending).
  const size_t slot_index = lane.ring.ProducerNextIndex();
  ShardMsg* slot = lane.ring.BeginPushN();
  if (slot == nullptr) {
    // Backpressure, not loss. Publish this port's open batches (the worker
    // can only drain what it can see — and the commit lets the frontier
    // advance so other producers' gates and the merges keep moving), then
    // wait for room. The coordinator-thread port drains upstream while it
    // waits, exactly the PR 5 rule that keeps the ring cycle deadlock-free;
    // detached producer threads back off and rely on the driver pumping.
    CommitPortLanes(port, FlushReason::kFull);
    common::SpinBackoff backoff(config_.idle_spins, config_.idle_sleep_us);
    do {
      port.m_stalls_->Inc();
      ++port.lane_stalls_[static_cast<size_t>(shard_index)];
      if (port.inline_drain_) {
        DrainUp();
        std::this_thread::yield();
      } else {
        backoff.Pause();
      }
      slot = lane.ring.BeginPushN();
    } while (slot == nullptr);
  }
  fill(*slot, lane, slot_index);
  // Track the open batch's earliest message time: the frontier may not
  // pass an uncommitted (worker-invisible) message.
  if (port.lane_open_ns_[static_cast<size_t>(shard_index)] == INT64_MAX) {
    port.lane_open_ns_[static_cast<size_t>(shard_index)] = slot->when_ns;
    port.open_min_ns_ = std::min(port.open_min_ns_, slot->when_ns);
  }
  if (const auto depth = static_cast<uint64_t>(lane.ring.SizeFromProducer());
      depth > port.lane_hwm_[static_cast<size_t>(shard_index)]) {
    port.lane_hwm_[static_cast<size_t>(shard_index)] = depth;
  }
  if (lane.ring.open_push() >= config_.batch_max) {
    port.m_batch_committed_->Record(
        static_cast<int64_t>(lane.ring.open_push()));
    port.m_flush_full_->Inc();
    lane.ring.CommitPushN();
    port.lane_open_ns_[static_cast<size_t>(shard_index)] = INT64_MAX;
    port.open_min_ns_ = MinOf(port.lane_open_ns_);
    PublishFrontier(port,
                    std::min(port.open_min_ns_, port.last_when_ns_));
  }
}

void ShardedIds::CommitPortLanes(IngestPort& port, FlushReason reason) {
  obs::Counter* flush_reason = port.m_flush_barrier_;
  switch (reason) {
    case FlushReason::kFull: flush_reason = port.m_flush_full_; break;
    case FlushReason::kDeadline: flush_reason = port.m_flush_deadline_; break;
    case FlushReason::kBarrier: break;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    common::SpscRing<ShardMsg>& ring =
        shards_[s]->lanes[static_cast<size_t>(port.index_)]->ring;
    if (const size_t open = ring.open_push(); open != 0) {
      port.m_batch_committed_->Record(static_cast<int64_t>(open));
      flush_reason->Inc();
      ring.CommitPushN();
    }
    port.lane_open_ns_[s] = INT64_MAX;
  }
  port.open_min_ns_ = INT64_MAX;
  port.deadline_armed_ = false;
  PublishFrontier(port, port.last_when_ns_);
}

void ShardedIds::PortDeadlineCheck(IngestPort& port, int64_t when_ns) {
  // Bounded-latency flush: a partial batch is published once it has been
  // open for batch_flush_us, enforced in both clock domains — source time
  // first (an integer compare, no clock read), then wall clock — so a
  // faster-than-real-time replay cannot hold a pre-gap packet unpublished
  // while the stream's own clock races far past it. The batch_max == 1
  // configuration commits in PushLane and never touches either clock.
  if (config_.batch_max <= 1) return;
  if (port.open_min_ns_ == INT64_MAX) {
    port.deadline_armed_ = false;
    return;
  }
  if (!port.deadline_armed_) {
    port.deadline_armed_ = true;
    port.deadline_since_ = std::chrono::steady_clock::now();
    port.deadline_src_ns_ = when_ns;
    return;
  }
  if (when_ns - port.deadline_src_ns_ >= config_.batch_flush_us * 1000 ||
      std::chrono::steady_clock::now() - port.deadline_since_ >=
          std::chrono::microseconds(config_.batch_flush_us)) {
    CommitPortLanes(port, FlushReason::kDeadline);
  }
}

bool ShardedIds::CarriesClaims(const net::Datagram& dgram,
                               sip::LazyMessage& scratch) {
  // Same dispatch test as IngestOn below: not RTCP-foldable, not a trusted
  // RTP hint, and the lazy SIP parser accepts it.
  if (rtp::LooksLikeRtcp(dgram.payload) && dgram.dst.port >= 1) return false;
  return dgram.kind != net::PayloadKind::kRtp && scratch.Index(dgram.payload);
}

void ShardedIds::IngestOn(IngestPort& port, const net::Datagram& dgram,
                          bool from_outside, sim::Time when, uint64_t seq) {
  if (workers_joined_ || port.closed_) return;  // stopped engines drop quietly
  const int64_t when_ns = when.nanos();
  port.last_when_ns_ = std::max(port.last_when_ns_, when_ns);
  port.last_when_pub_.store(port.last_when_ns_, std::memory_order_relaxed);

  // Replicate the classifier's dispatch order (classifier.cpp) so the
  // router and the shard-side classifier agree on what a packet is:
  // RTCP sniff first, then the hint-ordered SIP attempt, then endpoint
  // routing for RTP and everything else. The kSip-vs-content check is
  // byte-accurate (the same lazy parser); the kRtp hint is trusted — a
  // payload labeled RTP never reaches the SIP router, which is exactly the
  // classifier's behavior for parseable RTP.
  int target;
  if (rtp::LooksLikeRtcp(dgram.payload) && dgram.dst.port >= 1) {
    // Fold RTCP onto its media endpoint (port − 1) so the control and media
    // halves of one stream meet on one shard, as in Vids::HandleRtcp.
    const net::Endpoint media{dgram.dst.ip,
                              static_cast<uint16_t>(dgram.dst.port - 1)};
    target = RouteEndpoint(port, media, when_ns, seq);
  } else if (dgram.kind != net::PayloadKind::kRtp &&
             port.lazy_.Index(dgram.payload)) {
    const auto call_id = port.lazy_.CallId();
    target = ShardOfCallId(call_id.value_or(std::string_view()));
    port.m_sip_routed_->Inc();
    if (call_id.has_value() && !port.lazy_.body().empty()) {
      SnoopSdp(port, port.lazy_.body(), target, when_ns, seq);
    }
  } else {
    target = RouteEndpoint(port, dgram.dst, when_ns, seq);
  }

  // Span sampling: one in trace_sample_period packets (per port) gets its
  // enqueue wall time stamped into the slot; the worker closes the span.
  // With sampling off this is a single always-false branch — no clock read.
  int64_t span_ns = 0;
  if (trace_on_ && ((++port.trace_tick_ & trace_mask_) == 0)) {
    span_ns = obs::MonotonicNanos();
  }

  PushLane(port, target, [&](ShardMsg& msg, Lane& lane, size_t slot_index) {
    msg.kind = ShardMsg::Kind::kPacket;
    msg.when_ns = when_ns;
    msg.seq = seq;
    msg.span_enqueue_ns = span_ns;  // always assigned: slots are reused
    msg.from_outside = from_outside;
    msg.dgram.src = dgram.src;
    msg.dgram.dst = dgram.dst;
    msg.dgram.kind = dgram.kind;
    msg.dgram.padding_bytes = dgram.padding_bytes;
    msg.dgram.sent_time = dgram.sent_time;
    msg.dgram.id = dgram.id;
    if (lane.arena.Fits(dgram.payload.size())) {
      // Fast path: payload bytes go to the lane's contiguous slab; the
      // slot's own string is left untouched (its stale bytes are dead —
      // arena_len is the source of truth).
      lane.arena.Store(slot_index, dgram.payload.data(),
                       dgram.payload.size());
      msg.in_arena = true;
      msg.arena_len = static_cast<uint32_t>(dgram.payload.size());
    } else {
      msg.in_arena = false;
      msg.arena_len = 0;
      msg.dgram.payload.assign(dgram.payload);  // reuses the slot's capacity
    }
  });

  PortDeadlineCheck(port, when_ns);

  if (port.inline_drain_) {
    // Coordinator-thread port (single-producer engines): keep the legacy
    // bookkeeping and the opportunistic upstream drain so alerts surface
    // and the aggregate replay keeps pace without explicit Pump() calls.
    last_ingest_ns_ = std::max(last_ingest_ns_, when_ns);
    if ((++ingest_count_ & 31U) == 0) DrainUp();
  }
}

void ShardedIds::PortHeartbeat(IngestPort& port, sim::Time when) {
  if (port.closed_ || workers_joined_) return;
  port.last_when_ns_ = std::max(port.last_when_ns_, when.nanos());
  port.last_when_pub_.store(port.last_when_ns_, std::memory_order_relaxed);
  PortDeadlineCheck(port, port.last_when_ns_);
  PublishFrontier(port, std::min(port.open_min_ns_, port.last_when_ns_));
}

void ShardedIds::PortClose(IngestPort& port) {
  if (port.closed_) return;
  CommitPortLanes(port, FlushReason::kBarrier);
  port.closed_ = true;
  PublishFrontier(port, INT64_MAX);
}

void ShardedIds::Ingest(const net::Datagram& dgram, bool from_outside,
                        sim::Time when) {
  IngestPort& p0 = *ports_[0];
  IngestOn(p0, dgram, from_outside, when, p0.auto_seq_++);
}

// ------------------------------------------------------------ coordinator

template <typename Fill>
void ShardedIds::PushDown(int shard_index, Fill&& fill) {
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  ShardMsg* slot = shard.down.BeginPushN();
  if (slot == nullptr) {
    // Backpressure, not loss. Publish the open batch (the worker can only
    // drain what it can see) and keep draining the up-rings while waiting
    // so a worker blocked pushing alerts upstream can make progress — this
    // pair of rules is what makes the ring cycle deadlock-free.
    if (const size_t open = shard.down.open_push(); open != 0) {
      m_batch_committed_->Record(static_cast<int64_t>(open));
      m_flush_full_->Inc();
    }
    shard.down.CommitPushN();
    do {
      ++shard.down_stalls;
      DrainUp();
      std::this_thread::yield();
      slot = shard.down.BeginPushN();
    } while (slot == nullptr);
  }
  fill(*slot);
  if (const auto depth = static_cast<uint64_t>(shard.down.SizeFromProducer());
      depth > shard.down_hwm) {
    shard.down_hwm = depth;
  }
  if (shard.down.open_push() >= config_.batch_max) {
    m_batch_committed_->Record(static_cast<int64_t>(shard.down.open_push()));
    m_flush_full_->Inc();
    shard.down.CommitPushN();
  }
}

void ShardedIds::CommitAllDown(FlushReason reason) {
  obs::Counter* flush_reason =
      reason == FlushReason::kFull ? m_flush_full_ : m_flush_barrier_;
  for (auto& shard : shards_) {
    if (const size_t open = shard->down.open_push(); open != 0) {
      m_batch_committed_->Record(static_cast<int64_t>(open));
      flush_reason->Inc();
      shard->down.CommitPushN();
    }
  }
}

int64_t ShardedIds::LatestIngestNs() const {
  int64_t t = last_ingest_ns_;
  for (const auto& port : ports_) {
    t = std::max(t, port->last_when_pub_.load(std::memory_order_relaxed));
  }
  return t;
}

void ShardedIds::Pump() {
  // Only the coordinator-thread port's open batches may be committed from
  // here — the other ports' producer-side ring state belongs to their
  // threads (Flush/Stop may touch it, under the quiescence contract).
  if (ports_[0]->inline_drain_) {
    CommitPortLanes(*ports_[0], FlushReason::kBarrier);
  }
  CommitAllDown(FlushReason::kBarrier);
  DrainUp();
}

void ShardedIds::WatchdogCheck() {
  if (watchdog_threshold_ns_ == 0 || workers_joined_) return;
  const int64_t now = obs::MonotonicNanos();
  if (now - last_watchdog_check_ns_ < watchdog_poll_ns_) return;
  // Episode continuity: an open stall episode only counts toward the
  // deadline while the coordinator itself keeps checking. If *we* went
  // quiet (driver paused between Ingest/Pump calls — a worker blocked in
  // PushUp with a frozen heartbeat is then OUR doing, not a stall), the
  // gap shows up here and every episode re-anchors instead of alerting.
  const bool continuous =
      last_watchdog_check_ns_ != 0 &&
      now - last_watchdog_check_ns_ <= watchdog_threshold_ns_ / 2;
  last_watchdog_check_ns_ = now;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    ShardHealth& h = health_[i];
    size_t depth = shard.down.SizeApprox();
    for (const auto& lane : shard.lanes) depth += lane->ring.SizeApprox();
    const int64_t hb = shard.last_progress_ns.load(std::memory_order_acquire);
    const int64_t src = shard.processed_ns.load(std::memory_order_acquire);
    if (depth == 0) {
      // Nothing pending — an idle worker is healthy however old its
      // heartbeat is (idle-then-burst must not alert).
      h.hb_seen = hb;
      h.src_seen = src;
      h.pending_since_ns = 0;
      h.alerted = false;
      continue;
    }
    if (!continuous || h.pending_since_ns == 0 || hb != h.hb_seen ||
        src != h.src_seen) {
      // Progress since last check (or no episode yet): anchor a fresh
      // episode at the first continuously-observed no-progress instant.
      // Source-reported time counts as progress in its own right: under
      // replay the worker can be busy sweeping a capture gap (or a slice
      // heartbeat may land between our polls), and a worker whose stream
      // clock advances is by definition not wedged.
      h.hb_seen = hb;
      h.src_seen = src;
      h.pending_since_ns = now;
      h.alerted = false;
      continue;
    }
    if (!h.alerted && now - h.pending_since_ns >= watchdog_threshold_ns_) {
      // Pending work, no progress, continuously observed for a full
      // deadline: stalled. One alert per episode, attributed to the
      // producer lane the worker is merge-blocked on when there is one —
      // the worker is alive but starved of a frontier, which is the
      // producer's failure, not the worker's.
      h.alerted = true;
      m_watchdog_stalls_->Inc();
      const int lane = shard.waiting_on_lane.load(std::memory_order_relaxed);
      Alert alert;
      alert.when = sim::Time::FromNanos(LatestIngestNs());
      alert.kind = AlertKind::kEngineHealth;
      alert.machine = "watchdog";
      alert.state = "stalled";
      alert.detail = "ring_depth=" + std::to_string(depth) + " stalled_ms=" +
                     std::to_string((now - h.pending_since_ns) / 1'000'000);
      if (lane >= 0) {
        m_watchdog_producer_stalls_->Inc();
        alert.classification = std::string(kEngineProducerStall);
        alert.group = "producer|" + std::to_string(lane);
        alert.detail += " shard=" + std::to_string(i);
        alert.trigger =
            "watchdog: worker merge-blocked on an ingest lane whose "
            "producer frontier stopped advancing past the stall deadline";
      } else {
        alert.classification = std::string(kEngineWorkerStall);
        alert.group = "shard|" + std::to_string(i);
        alert.trigger =
            "watchdog: shard rings non-empty with no worker progress past "
            "the stall deadline";
      }
      EmitAlert(std::move(alert));
    }
  }
}

void ShardedIds::DrainUp() {
  WatchdogCheck();
  // Snapshot the replay frontier BEFORE draining. A shard commits every
  // aggregate event it vouches for (release through the ring) before it
  // publishes agg_complete_ns (release), so an acquire load of
  // agg_complete_ns >= T guarantees those events are already in the ring
  // and land in pending_ below. Loading the frontier after the drain
  // instead would let an event committed mid-drain sit at-or-before a
  // fresher frontier while missing from pending_ — and a later-timestamped
  // event from another shard would replay ahead of it, out of order.
  int64_t frontier = INT64_MAX;
  for (const auto& shard : shards_) {
    frontier = std::min(
        frontier, shard->agg_complete_ns.load(std::memory_order_acquire));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    for (;;) {
      const size_t n = shard.up.FrontN(config_.batch_max);
      if (n == 0) break;
      for (size_t j = 0; j < n; ++j) {
        UpMsg& msg = shard.up.At(j);
        switch (msg.kind) {
          case UpMsg::Kind::kAlert:
            EmitAlert(msg.alert);  // copies; the slot keeps its buffers
            break;
          case UpMsg::Kind::kAgg: {
            m_agg_events_->Inc();
            AggEvent event;
            event.when_ns = msg.when_ns;
            event.kind = msg.agg;
            event.key = msg.key;
            event.src_ip = msg.src_ip;
            event.dst_ip = msg.dst_ip;
            event.peer = msg.peer;
            event.ua = msg.ua;
            event.aux = msg.aux;
            pending_[i].push_back(std::move(event));
            break;
          }
          case UpMsg::Kind::kAggHot: {
            m_escalations_->Inc();
            auto& hot = msg.agg == Vids::AggregateKind::kInviteRequest
                            ? hot_invite_
                            : hot_drdos_;
            auto it = hot.find(msg.key);
            if (it == hot.end()) {
              hot.emplace(msg.key, msg.when_ns);
              hot_pending_.push_back(
                  HotBroadcast{msg.agg, msg.key, msg.when_ns});
            } else {
              it->second = std::max(it->second, msg.when_ns);
            }
            break;
          }
          case UpMsg::Kind::kFlushAck:
            if (msg.token == flush_token_) ++flush_acks_;
            break;
        }
      }
      shard.up.PopN(n);
    }
  }
  ReplayAggregates(frontier);
  BroadcastHotKeys();
}

void ShardedIds::BroadcastHotKeys() {
  // Not while stopping: a worker past its kStop never drains its control
  // lane, so a push into a full one would wait forever. (The events behind
  // the escalation still replay — Stop()'s terminal drain is ungated.)
  if (broadcasting_ || stopping_ || hot_pending_.empty()) return;
  broadcasting_ = true;
  // Index loop, not iterators: PushDown can hit backpressure and re-enter
  // DrainUp, which may append more escalations; the loop picks them up.
  for (size_t b = 0; b < hot_pending_.size(); ++b) {
    for (int s = 0; s < shards(); ++s) {
      PushDown(s, [&](ShardMsg& msg) {
        const HotBroadcast& hb = hot_pending_[b];  // re-index: DrainUp may
        msg.kind = ShardMsg::Kind::kAggHot;        // have grown the vector
        msg.when_ns = hb.when_ns;
        msg.agg = hb.agg;
        msg.key.assign(hb.key);
      });
    }
  }
  hot_pending_.clear();
  CommitAllDown(FlushReason::kBarrier);
  broadcasting_ = false;
}

void ShardedIds::ReplayAggregates(int64_t frontier) {
  // Safe-replay frontier (snapshotted by the caller before its drain):
  // every shard guarantees all its aggregate events at or before it are
  // already in pending_. Events beyond the frontier wait — a slow or
  // still-buffering shard may yet emit an earlier one. (An event a shard
  // commits after the snapshot can tie the frontier exactly, never
  // undercut it: per-ring times are non-decreasing, a shard's buffer only
  // holds times above its published frontier, and the window counters are
  // order-insensitive within one instant, so a same-instant straggler
  // replayed in a later batch lands on identical state.)
  // K-way merge by event time. Ties across shards are replayed in shard
  // order; the window counters are order-insensitive within one instant
  // (counts and alert times depend only on the multiset of event times).
  for (;;) {
    int best = -1;
    int64_t best_t = INT64_MAX;
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].empty()) continue;
      const int64_t t = pending_[i].front().when_ns;
      if (t <= frontier && t < best_t) {
        best_t = t;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    AggEvent event = std::move(pending_[static_cast<size_t>(best)].front());
    pending_[static_cast<size_t>(best)].pop_front();
    ReplayOne(event);
  }
}

void ShardedIds::ReplayOne(const AggEvent& event) {
  // Behavior events feed the coordinator-owned engine. The k-way merge
  // already ordered them by time across shards, so the engine sees the
  // same time-ordered per-entity stream the plain (unsharded) engine sees
  // inline — byte-identical alerts by construction (DESIGN.md §16).
  switch (event.kind) {
    case Vids::AggregateKind::kBehaviorCallStart:
      behavior_.OnCallStart(sim::Time::FromNanos(event.when_ns), event.key,
                            event.peer, event.ua, event.aux);
      return;
    case Vids::AggregateKind::kBehaviorCallEnd:
      behavior_.OnCallEnd(sim::Time::FromNanos(event.when_ns), event.key,
                          event.aux);
      return;
    case Vids::AggregateKind::kBehaviorRegFailure:
      behavior_.OnRegFailure(sim::Time::FromNanos(event.when_ns), event.key,
                             event.aux);
      return;
    case Vids::AggregateKind::kBehaviorRegSuccess:
      behavior_.OnRegSuccess(sim::Time::FromNanos(event.when_ns), event.key);
      return;
    default:
      break;
  }
  // Exact replay of patterns.cpp BuildWindowCounter + the Vids alert dedup:
  //  - first event arms T1 (deadline) and sets count = 1;
  //  - the timer is NOT restarted by further events; at expiry the counter
  //    resets (lazily: a scheduler timer at `deadline` fires before a
  //    packet at the same instant, hence the >= check);
  //  - count > threshold is the attack state; every further event re-enters
  //    it, deduplicated within alert_dedup_window.
  const bool invite = event.kind == Vids::AggregateKind::kInviteRequest;
  auto& windows = invite ? invite_windows_ : drdos_windows_;
  const int64_t threshold = invite ? config_.detection.invite_flood_threshold
                                   : config_.detection.drdos_threshold;
  const int64_t window_ns = (invite ? config_.detection.invite_flood_window
                                    : config_.detection.drdos_window)
                                .nanos();
  const int64_t t = event.when_ns;
  WinState& w = windows.try_emplace(event.key).first->second;
  w.last_event_ns = t;
  if (w.armed && t >= w.deadline_ns) {
    w.armed = false;
    w.count = 0;
  }
  if (!w.armed) {
    w.armed = true;
    w.count = 1;
    w.deadline_ns = t + window_ns;
    return;
  }
  ++w.count;
  if (w.count <= threshold) return;  // "within threshold N"

  // Attack state (entry or self-loop).
  const int64_t dedup_ns = config_.detection.alert_dedup_window.nanos();
  if (w.alerted_once && t - w.last_alert_ns < dedup_ns) {
    m_coord_suppressed_->Inc();
    return;
  }
  w.alerted_once = true;
  w.last_alert_ns = t;
  m_coord_alerts_->Inc();

  Alert alert;
  alert.when = sim::Time::FromNanos(t);
  alert.kind = AlertKind::kAttackPattern;
  alert.classification =
      std::string(invite ? kAttackInviteFlood : kAttackDrdos);
  alert.machine = invite ? "invite-flood" : "drdos";
  alert.group = (invite ? "flood|" : "drdos|") + event.key;
  alert.state = alert.classification;
  alert.detail =
      "src=" + (event.src_ip.empty() ? std::string("?") : event.src_ip) +
      " dst=" + (event.dst_ip.empty() ? std::string("?") : event.dst_ip);
  alert.trigger = alert.machine +
                  ": aggregate window counter surged beyond threshold N "
                  "within T1 (coordinator replay)";
  EmitAlert(std::move(alert));
}

void ShardedIds::EmitAlert(Alert alert) {
  if (alert_callback_) alert_callback_(alert);
  // Ordered insert at the canonical position (see alerts()). Alerts
  // arrive near-sorted — each source's stream is time-ordered — so the
  // upper_bound lands near the back, and the retained history stays small
  // under max_retained_alerts.
  AlertKey key{alert.when.nanos(), alert.ToString()};
  const auto it =
      std::upper_bound(alert_keys_.begin(), alert_keys_.end(), key);
  const auto at = it - alert_keys_.begin();
  alert_keys_.insert(it, std::move(key));
  alerts_.insert(alerts_.begin() + at, std::move(alert));
  if (config_.max_retained_alerts != 0 &&
      alerts_.size() > config_.max_retained_alerts) {
    const auto drop = static_cast<ptrdiff_t>(alerts_.size() / 2);
    alerts_.erase(alerts_.begin(), alerts_.begin() + drop);
    alert_keys_.erase(alert_keys_.begin(), alert_keys_.begin() + drop);
  }
}

void ShardedIds::Flush(sim::Time now) {
  if (workers_joined_) {
    ReplayAggregates(INT64_MAX);
    return;
  }
  m_flushes_->Inc();
  int64_t now_ns = std::max(now.nanos(), last_ingest_ns_);
  for (const auto& port : ports_) {
    now_ns = std::max(now_ns,
                      port->last_when_pub_.load(std::memory_order_relaxed));
  }
  // Quiescent-ports contract: the caller has synchronized with every
  // producer thread, so the coordinator may publish their open batches and
  // force their frontiers past the barrier (the workers' barrier check
  // requires every frontier >= now_ns). Post-flush ingest must carry times
  // strictly after now_ns — PublishFrontier(now_ns + 1) records exactly
  // that promise.
  for (const auto& port : ports_) {
    CommitPortLanes(*port, FlushReason::kBarrier);
    PublishFrontier(*port, now_ns + 1);
  }
  ++flush_token_;
  flush_acks_ = 0;
  for (int i = 0; i < shards(); ++i) {
    PushDown(i, [&](ShardMsg& msg) {
      msg.kind = ShardMsg::Kind::kFlush;
      msg.when_ns = now_ns;
      msg.token = flush_token_;
    });
  }
  CommitAllDown(FlushReason::kBarrier);
  while (flush_acks_ < shards_.size()) {
    DrainUp();
    if (flush_acks_ < shards_.size()) std::this_thread::yield();
  }
  // Every shard acked — but an ack becomes visible with the batch's ring
  // commit, which precedes the shard's frontier store. Wait until every
  // aggregate-complete frontier actually reached now_ns, then the final
  // drain's (snapshot-before-drain) replay covers everything up to it.
  for (;;) {
    int64_t agg_frontier = INT64_MAX;
    for (const auto& shard : shards_) {
      agg_frontier = std::min(
          agg_frontier, shard->agg_complete_ns.load(std::memory_order_acquire));
    }
    if (agg_frontier >= now_ns) break;
    DrainUp();
    std::this_thread::yield();
  }
  DrainUp();
  PruneCoordinator(now_ns);
}

void ShardedIds::PruneCoordinator(int64_t now_ns) {
  // A media-owner entry is refreshed by every RTP hit, so idleness past the
  // shard-side state horizon (tombstone TTL + keyed idle timeout) means no
  // shard still holds state for the endpoint; routing can safely fall back
  // to the hash. (Streams with longer in-stream gaps would re-route — the
  // keyed group they'd rejoin was reclaimed at the 30 s idle timeout
  // anyway, so the fresh-count behavior matches the single engine.) The
  // rebuild requires quiescent readers — Flush()'s contract provides it.
  const int64_t owner_horizon_ns =
      (config_.detection.tombstone_ttl + config_.detection.keyed_idle_timeout)
          .nanos();
  owner_table_->Prune(now_ns, owner_horizon_ns);

  const int64_t dedup_ns = config_.detection.alert_dedup_window.nanos();
  const int64_t idle_ns = config_.detection.keyed_idle_timeout.nanos();
  const auto prune_windows = [&](StringKeyed<WinState>& windows) {
    std::erase_if(windows, [&](const auto& kv) {
      const WinState& w = kv.second;
      // Dropping a WinState is equivalent to the timer having fired and the
      // dedup signature having been evicted — only safe once both are past.
      const bool window_over = !w.armed || now_ns >= w.deadline_ns;
      const bool dedup_over =
          !w.alerted_once || now_ns - w.last_alert_ns >= dedup_ns;
      return window_over && dedup_over && now_ns - w.last_event_ns > idle_ns;
    });
  };
  prune_windows(invite_windows_);
  prune_windows(drdos_windows_);
  // Hot-key records age out on the same horizon as the worker sketches, so
  // a key that cools everywhere can re-escalate (and re-broadcast) later.
  const auto prune_hot = [&](StringKeyed<int64_t>& hot) {
    std::erase_if(hot, [&](const auto& kv) {
      return now_ns - kv.second > idle_ns;
    });
  };
  prune_hot(hot_invite_);
  prune_hot(hot_drdos_);
  // Behavior profiles reclaim on their own idle horizon; the sweep is
  // memory-only (never scores, never alerts), so running it here — on the
  // flush cadence rather than the plain engine's fact-base sweep cadence —
  // cannot perturb alert equivalence (DESIGN.md §16).
  behavior_.Sweep(sim::Time::FromNanos(now_ns));
}

void ShardedIds::Stop() {
  if (workers_joined_) return;
  stopping_ = true;  // no more control-lane broadcasts from here on
  // Quiescent-ports contract (as in Flush): publish every port's open
  // batches and raise the frontiers to +inf so the workers' kStop barrier
  // (all lanes drained, all frontiers terminal) can pass.
  for (const auto& port : ports_) {
    CommitPortLanes(*port, FlushReason::kBarrier);
    PublishFrontier(*port, INT64_MAX);
  }
  for (int i = 0; i < shards(); ++i) {
    PushDown(i, [](ShardMsg& msg) { msg.kind = ShardMsg::Kind::kStop; });
  }
  CommitAllDown(FlushReason::kBarrier);
  // A worker with lane backlog keeps emitting up-messages on its way to
  // the kStop and blocks in PushUp if its up-ring fills — so keep draining
  // until every worker has passed its kStop; only then is join()
  // guaranteed to return.
  for (;;) {
    bool all_done = true;
    for (const auto& shard : shards_) {
      if (!shard->done.load(std::memory_order_acquire)) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    DrainUp();
    std::this_thread::yield();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  workers_joined_ = true;
  // Workers are gone; ring contents are final (every shard shipped its
  // whole staging buffer at kStop). Drain and replay everything.
  DrainUp();
  ReplayAggregates(INT64_MAX);
}

void ShardedIds::WedgeWorkerForTest(int shard_index) {
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  shard.wedged.store(true, std::memory_order_release);
  PushDown(shard_index, [&](ShardMsg& msg) {
    msg.kind = ShardMsg::Kind::kWedge;
    msg.when_ns = LatestIngestNs();
  });
  CommitAllDown(FlushReason::kBarrier);
}

void ShardedIds::UnwedgeWorkerForTest(int shard_index) {
  shards_[static_cast<size_t>(shard_index)]->wedged.store(
      false, std::memory_order_release);
}

// ------------------------------------------------------------- inspection

size_t ShardedIds::CountAlerts(AlertKind kind) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.kind == kind) ++count;
  }
  return count;
}

size_t ShardedIds::CountAlerts(std::string_view classification) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.classification == classification) ++count;
  }
  return count;
}

uint64_t ShardedIds::ingest_stalls() const {
  uint64_t total = 0;
  for (const auto& port : ports_) total += port->m_stalls_->value();
  return total;
}

uint64_t ShardedIds::ownership_transfers() const {
  uint64_t total = 0;
  for (const auto& port : ports_) total += port->m_retracts_->value();
  return total;
}

uint64_t ShardedIds::early_media_retracts() const {
  uint64_t total = 0;
  for (const auto& port : ports_) total += port->m_early_retracts_->value();
  return total;
}

uint64_t ShardedIds::route_escalations() const {
  uint64_t total = 0;
  for (const auto& port : ports_) {
    total += port->m_route_escalations_->value();
  }
  return total;
}

obs::MetricsRegistry ShardedIds::MergedMetrics() const {
  obs::MetricsRegistry merged;
  merged.MergeFrom(coord_metrics_);
  // Every port folds bare: same metric names as the PR 5 coordinator's
  // routing counters, so the familiar series stay meaningful — they are
  // now sums over producers.
  for (const auto& port : ports_) merged.MergeFrom(port->metrics_);
  uint64_t up_stalls = 0;
  uint64_t agg_buffered = 0;
  uint64_t agg_shipped = 0;
  std::string prefix;
  std::string lane_prefix;
  for (const auto& shard : shards_) {
    merged.MergeFrom(shard->vids->metrics());
    // Pipeline histograms fold twice: bare (cross-shard aggregate, what
    // the latency table reads) and under "shard.<i>." (the per-shard
    // series the Prometheus exporter turns into shard="<i>" labels).
    merged.MergeFrom(shard->pipeline);
    prefix.assign("shard.");
    prefix.append(std::to_string(shard->index));
    prefix.push_back('.');
    merged.MergeFrom(shard->pipeline, prefix);
    merged.GetGauge(prefix + "ring.down_depth_hwm")
        .Set(static_cast<int64_t>(shard->down_hwm));
    merged.GetGauge(prefix + "ring.up_depth_hwm")
        .Set(static_cast<int64_t>(shard->up_hwm));
    merged.GetCounter(prefix + "ring.down_stalls").Inc(shard->down_stalls);
    merged.GetCounter(prefix + "ring.up_stalls").Inc(shard->up_stalls);
    // Per-lane producer-side series: "shard.<i>.lane.<p>.ring.*" — the
    // exporter renders these with both shard and lane labels.
    for (size_t p = 0; p < ports_.size(); ++p) {
      lane_prefix.assign(prefix);
      lane_prefix.append("lane.");
      lane_prefix.append(std::to_string(p));
      lane_prefix.push_back('.');
      const auto si = static_cast<size_t>(shard->index);
      merged.GetGauge(lane_prefix + "ring.depth_hwm")
          .Set(static_cast<int64_t>(ports_[p]->lane_hwm_[si]));
      merged.GetCounter(lane_prefix + "ring.stalls")
          .Inc(ports_[p]->lane_stalls_[si]);
    }
    up_stalls += shard->up_stalls;
    agg_buffered += shard->agg.events_buffered;
    agg_shipped += shard->agg.events_shipped;
  }
  merged.GetCounter("sharded.worker_stalls").Inc(up_stalls);
  merged.GetCounter("sharded.agg_events_buffered").Inc(agg_buffered);
  merged.GetCounter("sharded.agg_events_shipped").Inc(agg_shipped);
  merged.GetGauge("sharded.shards").Set(shards());
  merged.GetGauge("sharded.producers").Set(producers());
  merged.GetGauge("sharded.behavior_profiles")
      .Set(static_cast<int64_t>(behavior_.profile_count()));
  return merged;
}

size_t ShardedIds::TrackedState() const {
  size_t total = owner_table_->size() + invite_windows_.size() +
                 drdos_windows_.size() + behavior_.profile_count();
  for (const auto& shard : shards_) {
    const CallStateFactBase& fb = shard->vids->fact_base();
    total += fb.call_count() + fb.keyed_count() + fb.tombstone_count() +
             fb.media_index_count();
  }
  return total;
}

size_t ShardedIds::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& shard : shards_) {
    bytes += shard->vids->fact_base().MemoryBytes();
    bytes += (shard->down.capacity() * sizeof(ShardMsg) +
              shard->up.capacity() * sizeof(UpMsg));
    for (const auto& lane : shard->lanes) {
      bytes += lane->ring.capacity() * sizeof(ShardMsg) +
               lane->arena.MemoryBytes();
    }
    bytes += shard->agg.buf.capacity() * sizeof(HeldAggEvent);
    for (const auto* sketches :
         {&shard->agg.invite_sketch, &shard->agg.drdos_sketch}) {
      for (const auto& [key, sketch] : *sketches) {
        bytes += key.capacity() + sizeof(AggSketch) +
                 sketch.recent.capacity() * sizeof(int64_t);
      }
    }
  }
  bytes += owner_table_->MemoryBytes();
  for (const auto* windows : {&invite_windows_, &drdos_windows_}) {
    for (const auto& [key, w] : *windows) {
      bytes += key.capacity() + sizeof(WinState);
    }
  }
  for (const auto* hot : {&hot_invite_, &hot_drdos_}) {
    for (const auto& [key, t] : *hot) bytes += key.capacity() + sizeof(int64_t);
  }
  for (const auto& queue : pending_) bytes += queue.size() * sizeof(AggEvent);
  bytes += behavior_.MemoryBytes();
  return bytes;
}

}  // namespace vids::ids
