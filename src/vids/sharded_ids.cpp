#include "vids/sharded_ids.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "rtp/rtcp.h"
#include "vids/classifier.h"
#include "vids/patterns.h"

namespace vids::ids {

namespace {

// Call-ID → shard. FNV-1a over the raw bytes: Call-IDs are adversarial
// input, but the partition only needs balance, not collision resistance —
// a skewed shard is a throughput problem, never a correctness one.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Endpoint key → shard. PackedKey is structured (ip << 16 | port), so mix
// it before taking the residue.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Field-wise copy that reuses the destination's string capacities — the
// ring-slot analog of the classifier's AssignStr.
void AssignAlert(Alert& dst, const Alert& src) {
  dst.when = src.when;
  dst.kind = src.kind;
  dst.classification.assign(src.classification);
  dst.machine.assign(src.machine);
  dst.group.assign(src.group);
  dst.state.assign(src.state);
  dst.detail.assign(src.detail);
  dst.provenance.resize(src.provenance.size());
  for (size_t i = 0; i < src.provenance.size(); ++i) {
    dst.provenance[i].assign(src.provenance[i]);
  }
}

// Hard cap on a shard's held-back aggregate events. A flood that outruns
// agg_hold aging forces a full ship instead of unbounded staging growth.
constexpr size_t kMaxHeldAggEvents = 1024;

}  // namespace

ShardedIds::ShardedIds(ShardedConfig config)
    : config_(config),
      m_ingest_stalls_(&coord_metrics_.GetCounter("sharded.ingest_stalls")),
      m_retracts_(&coord_metrics_.GetCounter("sharded.ownership_transfers")),
      m_early_retracts_(
          &coord_metrics_.GetCounter("sharded.early_media_retracts")),
      m_agg_events_(&coord_metrics_.GetCounter("sharded.agg_events")),
      m_coord_alerts_(&coord_metrics_.GetCounter("sharded.coord_alerts")),
      m_coord_suppressed_(
          &coord_metrics_.GetCounter("sharded.coord_alerts_suppressed")),
      m_sip_routed_(&coord_metrics_.GetCounter("sharded.sip_routed")),
      m_rtp_owner_routed_(
          &coord_metrics_.GetCounter("sharded.endpoint_owner_routed")),
      m_rtp_hash_routed_(
          &coord_metrics_.GetCounter("sharded.endpoint_hash_routed")),
      m_flushes_(&coord_metrics_.GetCounter("sharded.flushes")),
      m_escalations_(&coord_metrics_.GetCounter("sharded.agg_escalations")),
      m_watchdog_stalls_(
          &coord_metrics_.GetCounter("sharded.watchdog_stalls")),
      m_flush_full_(&coord_metrics_.GetCounter("pipeline.flush.full")),
      m_flush_deadline_(&coord_metrics_.GetCounter("pipeline.flush.deadline")),
      m_flush_barrier_(&coord_metrics_.GetCounter("pipeline.flush.barrier")),
      m_batch_committed_(
          &coord_metrics_.GetHistogram("pipeline.batch.committed")) {
  config_.shards = std::max(1, config_.shards);
  config_.batch_max = std::max<size_t>(1, config_.batch_max);
  const int n = config_.shards;
  if (config_.trace_sample_period > 0) {
    uint32_t period = 1;
    while (period < config_.trace_sample_period) period <<= 1;
    trace_on_ = true;
    trace_mask_ = period - 1;
  }
  watchdog_threshold_ns_ = config_.watchdog_stall_ms * 1'000'000;
  // Poll well inside the deadline (threshold/8, floor 1 ms) so an episode
  // accrues several consecutive checks before it can alert — the
  // continuity guard in WatchdogCheck() needs at least two.
  watchdog_poll_ns_ =
      std::max<int64_t>(watchdog_threshold_ns_ / 8, 1'000'000);
  health_.resize(static_cast<size_t>(n));
  // Escalation share: by pigeonhole, if a key sees more than `threshold`
  // events inside one window globally, some shard saw at least
  // ceil((threshold + 1) / shards) of them — so a shard whose local sketch
  // holds that many events within a window-span knows the key could be in
  // an over-threshold window and turns it hot. Fractions below 1.0 shrink
  // the share (earlier escalation, more eager shipping); above 1.0 would
  // let a real flood hide below every shard's share, so clamp.
  const double frac = std::clamp(config_.agg_escalation_fraction, 0.0, 1.0);
  const auto share = [&](int threshold) {
    const double target =
        frac * static_cast<double>(threshold + 1) / static_cast<double>(n);
    return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(target)));
  };
  esc_invite_share_ = share(config_.detection.invite_flood_threshold);
  esc_drdos_share_ = share(config_.detection.drdos_threshold);

  pending_.resize(static_cast<size_t>(n));
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(config_.ring_capacity);
    shard->index = i;
    shard->scheduler = std::make_unique<sim::Scheduler>();
    shard->vids = std::make_unique<Vids>(*shard->scheduler, config_.detection,
                                         config_.cost);
    // The coordinator keeps the merged history; the shard only needs enough
    // retained tail for its own internal bookkeeping.
    shard->vids->set_max_retained_alerts(4);
    // Resolve the worker's pipeline metric slots now, before its thread
    // starts — from then on a Record() is a plain array increment into the
    // worker-private registry (no cross-shard atomics, no lookups).
    shard->lat_ingest_to_dequeue =
        &shard->pipeline.GetHistogram("lat.ingest_to_dequeue");
    shard->lat_inspect = &shard->pipeline.GetHistogram("lat.inspect");
    shard->lat_e2e = &shard->pipeline.GetHistogram("lat.e2e");
    shard->lat_ingest_to_alert =
        &shard->pipeline.GetHistogram("lat.ingest_to_alert");
    shard->batch_consumed = &shard->pipeline.GetHistogram("batch.consumed");
    Shard* sp = shard.get();
    shard->vids->set_alert_callback([this, sp](const Alert& alert) {
      // A sampled packet that alerted: the open span's enqueue time is
      // still posted, so the emit stage of the trail gets its latency.
      if (sp->span_open_enqueue_ns != 0) {
        sp->lat_ingest_to_alert->Record(obs::MonotonicNanos() -
                                        sp->span_open_enqueue_ns);
      }
      PushUp(*sp, [&](UpMsg& up) {
        up.kind = UpMsg::Kind::kAlert;
        up.when_ns = alert.when.nanos();
        AssignAlert(up.alert, alert);
      });
    });
    // Always hook the aggregate feeds — even with one shard — so flood and
    // DRDoS detection take the identical (replayed) code path for every
    // shard count. Equivalence across N is then true by construction.
    shard->vids->set_aggregate_hook(
        [this, sp](Vids::AggregateKind kind, std::string_view key,
                   const ClassifiedPacket& packet) {
          const std::string* src = packet.event.ArgStr(argkey::kSrcIp);
          const std::string* dst = packet.event.ArgStr(argkey::kDstIp);
          // Dest AOR (INVITE flood) or dotted victim IP (DRDoS) — the hook
          // contract guarantees the key is populated for both.
          BufferAggEvent(
              *sp, kind, key,
              src != nullptr ? std::string_view(*src) : std::string_view(),
              dst != nullptr ? std::string_view(*dst) : std::string_view());
        });
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* sp = shard.get();
    sp->thread = std::thread([this, sp] { WorkerLoop(*sp); });
  }
}

ShardedIds::~ShardedIds() { Stop(); }

// ------------------------------------------------------------- worker side

template <typename Fill>
void ShardedIds::PushUp(Shard& shard, Fill&& fill) {
  UpMsg* slot = shard.up.BeginPushN();
  if (slot == nullptr) {
    // Publish whatever the open batch holds — the coordinator can only
    // free slots it can see — then wait for room. The coordinator drains
    // up-rings whenever it waits on a full down-ring and while it waits in
    // Flush()/Stop(), so this cannot deadlock against a blocked producer.
    // It can still be a long wait if the driver thread goes quiet between
    // Ingest/Pump calls — back off to a short sleep instead of spinning.
    shard.up.CommitPushN();
    common::SpinBackoff backoff(config_.idle_spins, config_.idle_sleep_us);
    do {
      ++shard.up_stalls;
      backoff.Pause();
      slot = shard.up.BeginPushN();
    } while (slot == nullptr);
  }
  fill(*slot);
  if (const auto depth = static_cast<uint64_t>(shard.up.SizeFromProducer());
      depth > shard.up_hwm) {
    shard.up_hwm = depth;
  }
  // No commit here: WorkerLoop publishes the whole batch of upstream
  // messages with one release store at batch end.
}

void ShardedIds::RecordSpan(Shard& shard, int64_t t0, int64_t t_dequeue) {
  const int64_t t_done = obs::MonotonicNanos();
  shard.lat_ingest_to_dequeue->Record(t_dequeue - t0);
  shard.lat_inspect->Record(t_done - t_dequeue);
  shard.lat_e2e->Record(t_done - t0);
  obs::Record rec;
  rec.type = obs::RecordType::kSpan;
  rec.when_ns = t0;
  rec.aux = static_cast<uint64_t>(t_done - t0);
  const auto micros = [](int64_t ns, int64_t cap) {
    const int64_t us = ns / 1000;
    return us > cap ? cap : (us < 0 ? int64_t{0} : us);
  };
  rec.a = static_cast<uint16_t>(micros(t_dequeue - t0, 65535));
  rec.from = static_cast<int16_t>(micros(t_done - t_dequeue, 32767));
  rec.to = static_cast<int16_t>(shard.index);
  shard.spans.Record(rec);
}

void ShardedIds::BufferAggEvent(Shard& shard, Vids::AggregateKind kind,
                                std::string_view key, std::string_view src_ip,
                                std::string_view dst_ip) {
  AggLocal& a = shard.agg;
  const int64_t t = shard.scheduler->Now().nanos();

  // Stage the event. Retired slots keep their string capacities; compact
  // by sliding the live tail down (swap, not copy) so the vector's size is
  // bounded by the peak number of simultaneously-held events.
  if (a.end == a.buf.size() && a.begin > 0) {
    const size_t live = a.live();
    for (size_t i = 0; i < live; ++i) {
      HeldAggEvent& dst = a.buf[i];
      HeldAggEvent& src = a.buf[a.begin + i];
      dst.when_ns = src.when_ns;
      dst.kind = src.kind;
      dst.key.swap(src.key);
      dst.src_ip.swap(src.src_ip);
      dst.dst_ip.swap(src.dst_ip);
    }
    a.begin = 0;
    a.end = live;
  }
  if (a.end == a.buf.size()) a.buf.emplace_back();
  HeldAggEvent& e = a.buf[a.end++];
  e.when_ns = t;
  e.kind = kind;
  e.key.assign(key);
  e.src_ip.assign(src_ip);
  e.dst_ip.assign(dst_ip);
  ++a.events_buffered;
  if (a.live() > kMaxHeldAggEvents) {
    ShipAggPrefix(shard, t);  // ships everything: `t` is the newest time
  }

  // Sliding sketch: record the key's last `share` event times; when all of
  // them (including this one) fall inside one window-span, escalate.
  const bool invite = kind == Vids::AggregateKind::kInviteRequest;
  auto& sketches = invite ? a.invite_sketch : a.drdos_sketch;
  const size_t share =
      static_cast<size_t>(invite ? esc_invite_share_ : esc_drdos_share_);
  const int64_t window_ns = (invite ? config_.detection.invite_flood_window
                                    : config_.detection.drdos_window)
                                .nanos();
  auto it = sketches.find(key);
  if (it == sketches.end()) {
    it = sketches.emplace(std::string(key), AggSketch{}).first;
  }
  AggSketch& s = it->second;
  s.last_event_ns = t;
  if (s.hot) return;
  if (s.recent.size() != share) s.recent.assign(share, INT64_MIN);
  s.recent[s.next] = t;
  s.next = (s.next + 1) % share;
  // After the insert, recent[next] is the oldest of the stored `share`
  // times; all of them within (t - window, t] means the local count alone
  // could be part of a globally over-threshold window.
  const int64_t oldest = s.recent[s.next];
  if (oldest == INT64_MIN || oldest <= t - window_ns) return;
  s.hot = true;
  ++a.hot_keys;
  PushUp(shard, [&](UpMsg& up) {
    up.kind = UpMsg::Kind::kAggHot;
    up.when_ns = t;
    up.agg = kind;
    up.key.assign(key);
    up.src_ip.clear();
    up.dst_ip.clear();
  });
}

void ShardedIds::ShipAggPrefix(Shard& shard, int64_t horizon) {
  AggLocal& a = shard.agg;
  while (a.begin < a.end && a.buf[a.begin].when_ns <= horizon) {
    const HeldAggEvent& e = a.buf[a.begin];
    PushUp(shard, [&](UpMsg& up) {
      up.kind = UpMsg::Kind::kAgg;
      up.when_ns = e.when_ns;
      up.agg = e.kind;
      up.key.assign(e.key);
      up.src_ip.assign(e.src_ip);
      up.dst_ip.assign(e.dst_ip);
    });
    ++a.begin;
    ++a.events_shipped;
  }
  if (a.begin == a.end) {
    a.begin = 0;
    a.end = 0;
  }
}

void ShardedIds::PruneAggSketches(Shard& shard, int64_t now_ns) {
  // Mirror the coordinator's window pruning: a sketch idle past the keyed
  // horizon can restart cold (hot keys cool down — hotness only affects
  // ship latency, never which events ship, so cooling is always safe).
  const int64_t idle_ns = config_.detection.keyed_idle_timeout.nanos();
  const auto prune = [&](StringKeyed<AggSketch>& sketches) {
    std::erase_if(sketches, [&](const auto& kv) {
      const AggSketch& s = kv.second;
      if (now_ns - s.last_event_ns <= idle_ns) return false;
      if (s.hot) --shard.agg.hot_keys;
      return true;
    });
  };
  prune(shard.agg.invite_sketch);
  prune(shard.agg.drdos_sketch);
}

void ShardedIds::WorkerLoop(Shard& shard) {
  net::Datagram scratch;
  common::SpinBackoff backoff(config_.idle_spins, config_.idle_sleep_us);
  const size_t batch_max = config_.batch_max;
  const int64_t hold_ns = config_.agg_hold.nanos();
  // Heartbeats only exist for the watchdog; the disabled configuration
  // (BM_ShardedIngest's pinned hot path) never reads the wall clock here.
  const bool heartbeat = watchdog_threshold_ns_ > 0;
  int64_t watermark = 0;
  bool stopping = false;
  while (!stopping) {
    const size_t n = shard.down.FrontN(batch_max);
    if (n == 0) {
      backoff.Pause();
      continue;
    }
    backoff.Reset();
    size_t consumed = 0;
    for (size_t i = 0; i < n && !stopping; ++i) {
      ShardMsg& msg = shard.down.At(i);
      ++consumed;
      const int64_t when_ns = msg.when_ns;
      const sim::Time when = sim::Time::FromNanos(when_ns);
      switch (msg.kind) {
        case ShardMsg::Kind::kPacket: {
          // Sampled span: note the dequeue time and post the enqueue time
          // where the alert callback can see it. Unsampled packets (and
          // the sampling-off configuration) take one never-true branch.
          const int64_t span_t0 = msg.span_enqueue_ns;
          int64_t span_dequeue = 0;
          if (span_t0 != 0) {
            span_dequeue = obs::MonotonicNanos();
            shard.span_open_enqueue_ns = span_t0;
          }
          scratch.src = msg.dgram.src;
          scratch.dst = msg.dgram.dst;
          scratch.kind = msg.dgram.kind;
          scratch.padding_bytes = msg.dgram.padding_bytes;
          scratch.sent_time = msg.dgram.sent_time;
          scratch.id = msg.dgram.id;
          // Swap, don't copy: the slot inherits the scratch's warm buffer
          // for the producer's next assign — steady state moves zero heap.
          scratch.payload.swap(msg.dgram.payload);
          // Advance this shard's private clock so detection timers (flood
          // windows, RTCP grace, sweeps) fire exactly as in the single
          // engine: all events <= `when` run before the packet is
          // inspected, matching the scheduler's timer-before-same-time-
          // packet order.
          AdvanceShardClock(shard, when);
          shard.vids->Inspect(scratch, msg.from_outside);
          if (span_t0 != 0) {
            RecordSpan(shard, span_t0, span_dequeue);
            shard.span_open_enqueue_ns = 0;
          }
          watermark = std::max(watermark, when_ns);
          break;
        }
        case ShardMsg::Kind::kRetractMedia: {
          AdvanceShardClock(shard, when);
          // This shard lost ownership of the endpoint: drop both the media
          // index binding and the per-endpoint keyed counters, so exactly
          // one shard counts the stream from the claim onward.
          shard.vids->fact_base().RetractMedia(msg.endpoint);
          shard.vids->fact_base().DropMediaKeyedGroup(msg.endpoint);
          watermark = std::max(watermark, when_ns);
          break;
        }
        case ShardMsg::Kind::kFlush: {
          AdvanceShardClock(shard, when);
          // The barrier promises every aggregate event up to `when` is
          // replayable: ship the whole staging buffer before the ack.
          ShipAggPrefix(shard, INT64_MAX);
          PruneAggSketches(shard, when_ns);
          PushUp(shard, [&](UpMsg& up) {
            up.kind = UpMsg::Kind::kFlushAck;
            up.when_ns = when_ns;
            up.token = msg.token;
          });
          watermark = std::max(watermark, when_ns);
          break;
        }
        case ShardMsg::Kind::kAggHot: {
          // Some shard escalated this key: bypass the hold locally too, so
          // this shard's frontier keeps pace and the coordinator's merged
          // replay of the hot key is not gated on our cold buffer.
          const bool invite = msg.agg == Vids::AggregateKind::kInviteRequest;
          auto& sketches =
              invite ? shard.agg.invite_sketch : shard.agg.drdos_sketch;
          auto it = sketches.find(msg.key);
          if (it == sketches.end()) {
            it = sketches.emplace(msg.key, AggSketch{}).first;
          }
          AggSketch& s = it->second;
          if (!s.hot) {
            s.hot = true;
            ++shard.agg.hot_keys;
          }
          s.last_event_ns = std::max(s.last_event_ns, msg.when_ns);
          break;
        }
        case ShardMsg::Kind::kWedge: {
          // Deliberate stall (tests): sleep mid-batch. The batch is not
          // retired and the heartbeat below is not reached, so the ring
          // stays non-empty with a frozen heartbeat — exactly the state
          // the watchdog must detect.
          while (shard.wedged.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          break;
        }
        case ShardMsg::Kind::kStop: {
          // Final ship so Stop()'s terminal replay sees every event.
          ShipAggPrefix(shard, INT64_MAX);
          stopping = true;
          break;
        }
      }
    }
    if (!stopping && shard.agg.live() != 0) {
      // Cold events age out after agg_hold; while any key is hot the whole
      // buffer ships every batch so replay tracks the packet frontier.
      ShipAggPrefix(shard, shard.agg.hot_keys > 0 ? watermark
                                                  : watermark - hold_ns);
    }
    // Worker-owned plain metric fields must be written before the commit
    // below: the coordinator reads `shard.pipeline` after acquiring the
    // flush ack published by this very batch.
    shard.batch_consumed->Record(static_cast<int64_t>(consumed));
    // One release store publishes every upstream message of this batch
    // (alerts, aggregate ships, escalations, acks) ...
    shard.up.CommitPushN();
    // ... one more retires the consumed down slots ...
    shard.down.PopN(consumed);
    // ... then the frontiers. agg_complete first: the events it vouches
    // for are already committed above, so an acquire read that observes
    // the new frontier also observes them in the ring (DESIGN.md §12).
    const int64_t agg_complete = shard.agg.live() == 0
                                     ? watermark
                                     : shard.agg.buf[shard.agg.begin].when_ns -
                                           1;
    shard.agg_complete_ns.store(agg_complete, std::memory_order_release);
    shard.processed_ns.store(watermark, std::memory_order_release);
    // Heartbeat last: it vouches for the whole retired batch. A worker
    // that wedges or blocks mid-batch never reaches this store.
    if (heartbeat) {
      shard.last_progress_ns.store(obs::MonotonicNanos(),
                                   std::memory_order_release);
    }
  }
  // After this store no further up-messages are pushed; Stop() drains
  // until every worker has raised it, then joins.
  shard.done.store(true, std::memory_order_release);
}

void ShardedIds::AdvanceShardClock(Shard& shard, sim::Time when) {
  sim::Scheduler& scheduler = *shard.scheduler;
  if (when <= scheduler.Now()) return;
  if (watchdog_threshold_ns_ == 0) {
    scheduler.RunUntil(when);
    return;
  }
  // Catch-up slicing. A capture gap (idle tap, faster-than-real-time
  // pcap/trace replay) can put hours of simulated time between two ring
  // messages, and every sweep/timer inside the gap runs here — mid-batch,
  // before the post-batch heartbeat store is reached. One monolithic
  // RunUntil would freeze the heartbeat for the whole catch-up and let the
  // watchdog mis-score genuine progress as a wedged worker. Bounded slices
  // keep both progress signals live: the wall-clock heartbeat and the
  // source-time frontier (processed_ns), which WatchdogCheck uses to
  // re-anchor open episodes.
  constexpr int64_t kSliceNs = 60'000'000'000;  // one simulated minute
  while (when.nanos() - scheduler.Now().nanos() > kSliceNs) {
    scheduler.RunUntil(scheduler.Now() + sim::Duration::Nanos(kSliceNs));
    shard.processed_ns.store(scheduler.Now().nanos(),
                             std::memory_order_release);
    shard.last_progress_ns.store(obs::MonotonicNanos(),
                                 std::memory_order_release);
  }
  scheduler.RunUntil(when);
}

// ---------------------------------------------------------------- routing

template <typename Fill>
void ShardedIds::PushDown(int shard_index, Fill&& fill) {
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  ShardMsg* slot = shard.down.BeginPushN();
  if (slot == nullptr) {
    // Backpressure, not loss. Publish the open batch (the worker can only
    // drain what it can see) and keep draining the up-rings while waiting
    // so a worker blocked pushing alerts upstream can make progress — this
    // pair of rules is what makes the ring cycle deadlock-free.
    if (const size_t open = shard.down.open_push(); open != 0) {
      m_batch_committed_->Record(static_cast<int64_t>(open));
      m_flush_full_->Inc();
    }
    shard.down.CommitPushN();
    do {
      m_ingest_stalls_->Inc();
      ++shard.down_stalls;
      DrainUp();
      std::this_thread::yield();
      slot = shard.down.BeginPushN();
    } while (slot == nullptr);
  }
  fill(*slot);
  if (const auto depth = static_cast<uint64_t>(shard.down.SizeFromProducer());
      depth > shard.down_hwm) {
    shard.down_hwm = depth;
  }
  if (shard.down.open_push() >= config_.batch_max) {
    m_batch_committed_->Record(static_cast<int64_t>(shard.down.open_push()));
    m_flush_full_->Inc();
    shard.down.CommitPushN();
  }
}

void ShardedIds::CommitAllDown(FlushReason reason) {
  obs::Counter* flush_reason = m_flush_barrier_;
  switch (reason) {
    case FlushReason::kFull: flush_reason = m_flush_full_; break;
    case FlushReason::kDeadline: flush_reason = m_flush_deadline_; break;
    case FlushReason::kBarrier: flush_reason = m_flush_barrier_; break;
  }
  for (auto& shard : shards_) {
    if (const size_t open = shard->down.open_push(); open != 0) {
      m_batch_committed_->Record(static_cast<int64_t>(open));
      flush_reason->Inc();
    }
    shard->down.CommitPushN();
  }
  down_open_ = false;
}

int ShardedIds::ShardOfCallId(std::string_view call_id) const {
  return static_cast<int>(Fnv1a(call_id) % shards_.size());
}

int ShardedIds::RouteEndpoint(const net::Endpoint& endpoint, int64_t when_ns) {
  const auto it = media_owner_.find(endpoint.PackedKey());
  if (it != media_owner_.end()) {
    it->second.last_seen_ns = when_ns;  // refresh: live streams never expire
    m_rtp_owner_routed_->Inc();
    return it->second.shard;
  }
  m_rtp_hash_routed_->Inc();
  return static_cast<int>(SplitMix64(endpoint.PackedKey()) % shards_.size());
}

void ShardedIds::SnoopSdp(std::string_view body, int shard, int64_t when_ns) {
  // Line scan for "c=... <ip>" / "m=audio <port>". This mirrors what the
  // shard-side classifier will extract; the router only needs the endpoint
  // → shard binding, not a full SDP model.
  std::optional<net::IpAddress> ip;
  size_t pos = 0;
  while (pos <= body.size()) {
    const size_t eol = body.find('\n', pos);
    std::string_view line =
        body.substr(pos, (eol == std::string_view::npos ? body.size() : eol) -
                             pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > 2 && line[0] == 'c' && line[1] == '=') {
      // "c=IN IP4 10.0.0.1" — the address is the last token.
      const size_t sp = line.rfind(' ');
      if (sp != std::string_view::npos) {
        ip = net::IpAddress::Parse(line.substr(sp + 1));
      }
    } else if (line.rfind("m=audio ", 0) == 0) {
      uint32_t port = 0;
      for (size_t i = 8; i < line.size() && line[i] >= '0' && line[i] <= '9';
           ++i) {
        port = port * 10 + static_cast<uint32_t>(line[i] - '0');
        if (port > 65535) break;
      }
      if (ip.has_value() && port > 0 && port <= 65535) {
        const net::Endpoint endpoint{*ip, static_cast<uint16_t>(port)};
        auto [it, inserted] = media_owner_.try_emplace(endpoint.PackedKey());
        if (inserted) {
          // First claim. Media that arrived before this negotiation was
          // hash-routed; if that fallback shard is not the new owner, tell
          // it to drop its partial per-endpoint state so the stream's
          // counters live on exactly one shard from here on (the pre-claim
          // counts are discarded, deterministically — see DESIGN.md §11).
          const int hash_shard = static_cast<int>(
              SplitMix64(endpoint.PackedKey()) % shards_.size());
          if (hash_shard != shard) {
            m_early_retracts_->Inc();
            PushDown(hash_shard, [&](ShardMsg& msg) {
              msg.kind = ShardMsg::Kind::kRetractMedia;
              msg.when_ns = when_ns;
              msg.endpoint = endpoint;
            });
          }
        }
        if (!inserted && it->second.shard != shard) {
          // Re-negotiation moved the endpoint to a call on another shard:
          // tell the old owner to drop its media-index claim. The message
          // rides the ring, so it lands behind every packet already routed
          // there — FIFO keeps the handover ordered.
          m_retracts_->Inc();
          PushDown(it->second.shard, [&](ShardMsg& msg) {
            msg.kind = ShardMsg::Kind::kRetractMedia;
            msg.when_ns = when_ns;
            msg.endpoint = endpoint;
          });
        }
        it->second.shard = shard;
        it->second.last_seen_ns = when_ns;
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
}

void ShardedIds::Ingest(const net::Datagram& dgram, bool from_outside,
                        sim::Time when) {
  if (workers_joined_) return;  // stopped engines drop quietly
  const int64_t when_ns = when.nanos();
  last_ingest_ns_ = std::max(last_ingest_ns_, when_ns);

  // Replicate the classifier's dispatch order (classifier.cpp) so the
  // router and the shard-side classifier agree on what a packet is:
  // RTCP sniff first, then the hint-ordered SIP attempt, then endpoint
  // routing for RTP and everything else. The kSip-vs-content check is
  // byte-accurate (the same lazy parser); the kRtp hint is trusted — a
  // payload labeled RTP never reaches the SIP router, which is exactly the
  // classifier's behavior for parseable RTP.
  int target;
  if (rtp::LooksLikeRtcp(dgram.payload) && dgram.dst.port >= 1) {
    // Fold RTCP onto its media endpoint (port − 1) so the control and media
    // halves of one stream meet on one shard, as in Vids::HandleRtcp.
    const net::Endpoint media{dgram.dst.ip,
                              static_cast<uint16_t>(dgram.dst.port - 1)};
    target = RouteEndpoint(media, when_ns);
  } else if (dgram.kind != net::PayloadKind::kRtp &&
             router_lazy_.Index(dgram.payload)) {
    const auto call_id = router_lazy_.CallId();
    target = ShardOfCallId(call_id.value_or(std::string_view()));
    m_sip_routed_->Inc();
    if (call_id.has_value() && !router_lazy_.body().empty()) {
      SnoopSdp(router_lazy_.body(), target, when_ns);
    }
  } else {
    target = RouteEndpoint(dgram.dst, when_ns);
  }

  // Span sampling: one in trace_sample_period packets gets its enqueue
  // wall time stamped into the slot; the worker closes the span. With
  // sampling off this is a single always-false branch — no clock read.
  int64_t span_ns = 0;
  if (trace_on_ && ((++trace_tick_ & trace_mask_) == 0)) {
    span_ns = obs::MonotonicNanos();
  }

  PushDown(target, [&](ShardMsg& msg) {
    msg.kind = ShardMsg::Kind::kPacket;
    msg.when_ns = when_ns;
    msg.span_enqueue_ns = span_ns;  // always assigned: slots are reused
    msg.from_outside = from_outside;
    msg.dgram.src = dgram.src;
    msg.dgram.dst = dgram.dst;
    msg.dgram.kind = dgram.kind;
    msg.dgram.padding_bytes = dgram.padding_bytes;
    msg.dgram.sent_time = dgram.sent_time;
    msg.dgram.id = dgram.id;
    msg.dgram.payload.assign(dgram.payload);  // reuses the slot's capacity
  });

  // Bounded-latency flush: a partial batch is published once it has been
  // open for batch_flush_us (checked here, so the bound holds while the
  // ingest thread keeps calling Ingest/Pump — see DESIGN.md §12). The
  // bound binds in both clock domains — source time first (an integer
  // compare, no clock read), then wall clock — so a faster-than-real-time
  // replay cannot hold a pre-gap packet unpublished while the stream's own
  // clock races far past it. The batch_max == 1 configuration commits in
  // PushDown and never touches either clock.
  if (config_.batch_max > 1) {
    bool any_open = false;
    for (const auto& shard : shards_) {
      if (shard->down.open_push() != 0) {
        any_open = true;
        break;
      }
    }
    if (!any_open) {
      down_open_ = false;
    } else if (!down_open_) {
      down_open_ = true;
      down_open_since_ = std::chrono::steady_clock::now();
      down_open_src_ns_ = when_ns;
    } else if (when_ns - down_open_src_ns_ >=
               config_.batch_flush_us * 1000) {
      CommitAllDown(FlushReason::kDeadline);
    } else if (std::chrono::steady_clock::now() - down_open_since_ >=
               std::chrono::microseconds(config_.batch_flush_us)) {
      CommitAllDown(FlushReason::kDeadline);
    }
  }

  // Opportunistic upstream drain so alerts surface and the aggregate
  // replay keeps pace without the driver having to call Pump().
  if ((++ingest_count_ & 31U) == 0) DrainUp();
}

// ------------------------------------------------------------ coordinator

void ShardedIds::Pump() {
  CommitAllDown(FlushReason::kBarrier);
  DrainUp();
}

void ShardedIds::WatchdogCheck() {
  if (watchdog_threshold_ns_ == 0 || workers_joined_) return;
  const int64_t now = obs::MonotonicNanos();
  if (now - last_watchdog_check_ns_ < watchdog_poll_ns_) return;
  // Episode continuity: an open stall episode only counts toward the
  // deadline while the coordinator itself keeps checking. If *we* went
  // quiet (driver paused between Ingest/Pump calls — a worker blocked in
  // PushUp with a frozen heartbeat is then OUR doing, not a stall), the
  // gap shows up here and every episode re-anchors instead of alerting.
  const bool continuous =
      last_watchdog_check_ns_ != 0 &&
      now - last_watchdog_check_ns_ <= watchdog_threshold_ns_ / 2;
  last_watchdog_check_ns_ = now;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    ShardHealth& h = health_[i];
    const size_t depth = shard.down.SizeApprox();
    const int64_t hb = shard.last_progress_ns.load(std::memory_order_acquire);
    const int64_t src = shard.processed_ns.load(std::memory_order_acquire);
    if (depth == 0) {
      // Nothing pending — an idle worker is healthy however old its
      // heartbeat is (idle-then-burst must not alert).
      h.hb_seen = hb;
      h.src_seen = src;
      h.pending_since_ns = 0;
      h.alerted = false;
      continue;
    }
    if (!continuous || h.pending_since_ns == 0 || hb != h.hb_seen ||
        src != h.src_seen) {
      // Progress since last check (or no episode yet): anchor a fresh
      // episode at the first continuously-observed no-progress instant.
      // Source-reported time counts as progress in its own right: under
      // replay the worker can be busy sweeping a capture gap (or a slice
      // heartbeat may land between our polls), and a worker whose stream
      // clock advances is by definition not wedged.
      h.hb_seen = hb;
      h.src_seen = src;
      h.pending_since_ns = now;
      h.alerted = false;
      continue;
    }
    if (!h.alerted && now - h.pending_since_ns >= watchdog_threshold_ns_) {
      // Pending work, no progress, continuously observed for a full
      // deadline: the worker is stalled. One alert per episode.
      h.alerted = true;
      m_watchdog_stalls_->Inc();
      Alert alert;
      alert.when = sim::Time::FromNanos(last_ingest_ns_);
      alert.kind = AlertKind::kEngineHealth;
      alert.classification = std::string(kEngineWorkerStall);
      alert.machine = "watchdog";
      alert.group = "shard|" + std::to_string(i);
      alert.state = "stalled";
      alert.detail = "ring_depth=" + std::to_string(depth) + " stalled_ms=" +
                     std::to_string((now - h.pending_since_ns) / 1'000'000);
      alert.trigger =
          "watchdog: down-ring non-empty with no worker progress past the "
          "stall deadline";
      EmitAlert(std::move(alert));
    }
  }
}

void ShardedIds::DrainUp() {
  WatchdogCheck();
  // Snapshot the replay frontier BEFORE draining. A shard commits every
  // aggregate event it vouches for (release through the ring) before it
  // publishes agg_complete_ns (release), so an acquire load of
  // agg_complete_ns >= T guarantees those events are already in the ring
  // and land in pending_ below. Loading the frontier after the drain
  // instead would let an event committed mid-drain sit at-or-before a
  // fresher frontier while missing from pending_ — and a later-timestamped
  // event from another shard would replay ahead of it, out of order.
  int64_t frontier = INT64_MAX;
  for (const auto& shard : shards_) {
    frontier = std::min(
        frontier, shard->agg_complete_ns.load(std::memory_order_acquire));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    for (;;) {
      const size_t n = shard.up.FrontN(config_.batch_max);
      if (n == 0) break;
      for (size_t j = 0; j < n; ++j) {
        UpMsg& msg = shard.up.At(j);
        switch (msg.kind) {
          case UpMsg::Kind::kAlert:
            EmitAlert(msg.alert);  // copies; the slot keeps its buffers
            break;
          case UpMsg::Kind::kAgg: {
            m_agg_events_->Inc();
            AggEvent event;
            event.when_ns = msg.when_ns;
            event.kind = msg.agg;
            event.key = msg.key;
            event.src_ip = msg.src_ip;
            event.dst_ip = msg.dst_ip;
            pending_[i].push_back(std::move(event));
            break;
          }
          case UpMsg::Kind::kAggHot: {
            m_escalations_->Inc();
            auto& hot = msg.agg == Vids::AggregateKind::kInviteRequest
                            ? hot_invite_
                            : hot_drdos_;
            auto it = hot.find(msg.key);
            if (it == hot.end()) {
              hot.emplace(msg.key, msg.when_ns);
              hot_pending_.push_back(
                  HotBroadcast{msg.agg, msg.key, msg.when_ns});
            } else {
              it->second = std::max(it->second, msg.when_ns);
            }
            break;
          }
          case UpMsg::Kind::kFlushAck:
            if (msg.token == flush_token_) ++flush_acks_;
            break;
        }
      }
      shard.up.PopN(n);
    }
  }
  ReplayAggregates(frontier);
  BroadcastHotKeys();
}

void ShardedIds::BroadcastHotKeys() {
  // Not while stopping: a worker past its kStop never drains its down-ring,
  // so a push into a full one would wait forever. (The events behind the
  // escalation still replay — Stop()'s terminal drain is ungated.)
  if (broadcasting_ || stopping_ || hot_pending_.empty()) return;
  broadcasting_ = true;
  // Index loop, not iterators: PushDown can hit backpressure and re-enter
  // DrainUp, which may append more escalations; the loop picks them up.
  for (size_t b = 0; b < hot_pending_.size(); ++b) {
    for (int s = 0; s < shards(); ++s) {
      PushDown(s, [&](ShardMsg& msg) {
        const HotBroadcast& hb = hot_pending_[b];  // re-index: DrainUp may
        msg.kind = ShardMsg::Kind::kAggHot;        // have grown the vector
        msg.when_ns = hb.when_ns;
        msg.agg = hb.agg;
        msg.key.assign(hb.key);
      });
    }
  }
  hot_pending_.clear();
  CommitAllDown(FlushReason::kBarrier);
  broadcasting_ = false;
}

void ShardedIds::ReplayAggregates(int64_t frontier) {
  // Safe-replay frontier (snapshotted by the caller before its drain):
  // every shard guarantees all its aggregate events at or before it are
  // already in pending_. Events beyond the frontier wait — a slow or
  // still-buffering shard may yet emit an earlier one. (An event a shard
  // commits after the snapshot can tie the frontier exactly, never
  // undercut it: per-ring times are non-decreasing, a shard's buffer only
  // holds times above its published frontier, and the window counters are
  // order-insensitive within one instant, so a same-instant straggler
  // replayed in a later batch lands on identical state.)
  // K-way merge by event time. Ties across shards are replayed in shard
  // order; the window counters are order-insensitive within one instant
  // (counts and alert times depend only on the multiset of event times).
  for (;;) {
    int best = -1;
    int64_t best_t = INT64_MAX;
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].empty()) continue;
      const int64_t t = pending_[i].front().when_ns;
      if (t <= frontier && t < best_t) {
        best_t = t;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    AggEvent event = std::move(pending_[static_cast<size_t>(best)].front());
    pending_[static_cast<size_t>(best)].pop_front();
    ReplayOne(event);
  }
}

void ShardedIds::ReplayOne(const AggEvent& event) {
  // Exact replay of patterns.cpp BuildWindowCounter + the Vids alert dedup:
  //  - first event arms T1 (deadline) and sets count = 1;
  //  - the timer is NOT restarted by further events; at expiry the counter
  //    resets (lazily: a scheduler timer at `deadline` fires before a
  //    packet at the same instant, hence the >= check);
  //  - count > threshold is the attack state; every further event re-enters
  //    it, deduplicated within alert_dedup_window.
  const bool invite = event.kind == Vids::AggregateKind::kInviteRequest;
  auto& windows = invite ? invite_windows_ : drdos_windows_;
  const int64_t threshold = invite ? config_.detection.invite_flood_threshold
                                   : config_.detection.drdos_threshold;
  const int64_t window_ns = (invite ? config_.detection.invite_flood_window
                                    : config_.detection.drdos_window)
                                .nanos();
  const int64_t t = event.when_ns;
  WinState& w = windows.try_emplace(event.key).first->second;
  w.last_event_ns = t;
  if (w.armed && t >= w.deadline_ns) {
    w.armed = false;
    w.count = 0;
  }
  if (!w.armed) {
    w.armed = true;
    w.count = 1;
    w.deadline_ns = t + window_ns;
    return;
  }
  ++w.count;
  if (w.count <= threshold) return;  // "within threshold N"

  // Attack state (entry or self-loop).
  const int64_t dedup_ns = config_.detection.alert_dedup_window.nanos();
  if (w.alerted_once && t - w.last_alert_ns < dedup_ns) {
    m_coord_suppressed_->Inc();
    return;
  }
  w.alerted_once = true;
  w.last_alert_ns = t;
  m_coord_alerts_->Inc();

  Alert alert;
  alert.when = sim::Time::FromNanos(t);
  alert.kind = AlertKind::kAttackPattern;
  alert.classification =
      std::string(invite ? kAttackInviteFlood : kAttackDrdos);
  alert.machine = invite ? "invite-flood" : "drdos";
  alert.group = (invite ? "flood|" : "drdos|") + event.key;
  alert.state = alert.classification;
  alert.detail =
      "src=" + (event.src_ip.empty() ? std::string("?") : event.src_ip) +
      " dst=" + (event.dst_ip.empty() ? std::string("?") : event.dst_ip);
  alert.trigger = alert.machine +
                  ": aggregate window counter surged beyond threshold N "
                  "within T1 (coordinator replay)";
  EmitAlert(std::move(alert));
}

void ShardedIds::EmitAlert(Alert alert) {
  if (alert_callback_) alert_callback_(alert);
  alerts_.push_back(std::move(alert));
  if (config_.max_retained_alerts != 0 &&
      alerts_.size() > config_.max_retained_alerts) {
    alerts_.erase(alerts_.begin(),
                  alerts_.begin() +
                      static_cast<ptrdiff_t>(alerts_.size() / 2));
  }
}

void ShardedIds::Flush(sim::Time now) {
  if (workers_joined_) {
    ReplayAggregates(INT64_MAX);
    return;
  }
  m_flushes_->Inc();
  const int64_t now_ns = std::max(now.nanos(), last_ingest_ns_);
  ++flush_token_;
  flush_acks_ = 0;
  for (int i = 0; i < shards(); ++i) {
    PushDown(i, [&](ShardMsg& msg) {
      msg.kind = ShardMsg::Kind::kFlush;
      msg.when_ns = now_ns;
      msg.token = flush_token_;
    });
  }
  CommitAllDown(FlushReason::kBarrier);
  while (flush_acks_ < shards_.size()) {
    DrainUp();
    if (flush_acks_ < shards_.size()) std::this_thread::yield();
  }
  // Every shard acked — but an ack becomes visible with the batch's ring
  // commit, which precedes the shard's frontier store. Wait until every
  // aggregate-complete frontier actually reached now_ns, then the final
  // drain's (snapshot-before-drain) replay covers everything up to it.
  for (;;) {
    int64_t agg_frontier = INT64_MAX;
    for (const auto& shard : shards_) {
      agg_frontier = std::min(
          agg_frontier, shard->agg_complete_ns.load(std::memory_order_acquire));
    }
    if (agg_frontier >= now_ns) break;
    DrainUp();
    std::this_thread::yield();
  }
  DrainUp();
  PruneCoordinator(now_ns);
}

void ShardedIds::PruneCoordinator(int64_t now_ns) {
  // A media-owner entry is refreshed by every RTP hit, so idleness past the
  // shard-side state horizon (tombstone TTL + keyed idle timeout) means no
  // shard still holds state for the endpoint; routing can safely fall back
  // to the hash. (Streams with longer in-stream gaps would re-route — the
  // keyed group they'd rejoin was reclaimed at the 30 s idle timeout
  // anyway, so the fresh-count behavior matches the single engine.)
  const int64_t owner_horizon_ns =
      (config_.detection.tombstone_ttl + config_.detection.keyed_idle_timeout)
          .nanos();
  std::erase_if(media_owner_, [&](const auto& kv) {
    return now_ns - kv.second.last_seen_ns > owner_horizon_ns;
  });

  const int64_t dedup_ns = config_.detection.alert_dedup_window.nanos();
  const int64_t idle_ns = config_.detection.keyed_idle_timeout.nanos();
  const auto prune_windows = [&](StringKeyed<WinState>& windows) {
    std::erase_if(windows, [&](const auto& kv) {
      const WinState& w = kv.second;
      // Dropping a WinState is equivalent to the timer having fired and the
      // dedup signature having been evicted — only safe once both are past.
      const bool window_over = !w.armed || now_ns >= w.deadline_ns;
      const bool dedup_over =
          !w.alerted_once || now_ns - w.last_alert_ns >= dedup_ns;
      return window_over && dedup_over && now_ns - w.last_event_ns > idle_ns;
    });
  };
  prune_windows(invite_windows_);
  prune_windows(drdos_windows_);
  // Hot-key records age out on the same horizon as the worker sketches, so
  // a key that cools everywhere can re-escalate (and re-broadcast) later.
  const auto prune_hot = [&](StringKeyed<int64_t>& hot) {
    std::erase_if(hot, [&](const auto& kv) {
      return now_ns - kv.second > idle_ns;
    });
  };
  prune_hot(hot_invite_);
  prune_hot(hot_drdos_);
}

void ShardedIds::Stop() {
  if (workers_joined_) return;
  stopping_ = true;  // no more down-ring broadcasts from here on
  for (int i = 0; i < shards(); ++i) {
    PushDown(i, [](ShardMsg& msg) { msg.kind = ShardMsg::Kind::kStop; });
  }
  CommitAllDown(FlushReason::kBarrier);
  // A worker with down-ring backlog keeps emitting up-messages on its way
  // to the kStop and blocks in PushUp if its up-ring fills — so keep
  // draining until every worker has passed its kStop; only then is join()
  // guaranteed to return.
  for (;;) {
    bool all_done = true;
    for (const auto& shard : shards_) {
      if (!shard->done.load(std::memory_order_acquire)) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    DrainUp();
    std::this_thread::yield();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  workers_joined_ = true;
  // Workers are gone; ring contents are final (every shard shipped its
  // whole staging buffer at kStop). Drain and replay everything.
  DrainUp();
  ReplayAggregates(INT64_MAX);
}

void ShardedIds::WedgeWorkerForTest(int shard_index) {
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  shard.wedged.store(true, std::memory_order_release);
  PushDown(shard_index, [&](ShardMsg& msg) {
    msg.kind = ShardMsg::Kind::kWedge;
    msg.when_ns = last_ingest_ns_;
  });
  CommitAllDown(FlushReason::kBarrier);
}

void ShardedIds::UnwedgeWorkerForTest(int shard_index) {
  shards_[static_cast<size_t>(shard_index)]->wedged.store(
      false, std::memory_order_release);
}

// ------------------------------------------------------------- inspection

size_t ShardedIds::CountAlerts(AlertKind kind) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.kind == kind) ++count;
  }
  return count;
}

size_t ShardedIds::CountAlerts(std::string_view classification) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.classification == classification) ++count;
  }
  return count;
}

obs::MetricsRegistry ShardedIds::MergedMetrics() const {
  obs::MetricsRegistry merged;
  merged.MergeFrom(coord_metrics_);
  uint64_t up_stalls = 0;
  uint64_t agg_buffered = 0;
  uint64_t agg_shipped = 0;
  std::string prefix;
  for (const auto& shard : shards_) {
    merged.MergeFrom(shard->vids->metrics());
    // Pipeline histograms fold twice: bare (cross-shard aggregate, what
    // the latency table reads) and under "shard.<i>." (the per-shard
    // series the Prometheus exporter turns into shard="<i>" labels).
    merged.MergeFrom(shard->pipeline);
    prefix.assign("shard.");
    prefix.append(std::to_string(shard->index));
    prefix.push_back('.');
    merged.MergeFrom(shard->pipeline, prefix);
    merged.GetGauge(prefix + "ring.down_depth_hwm")
        .Set(static_cast<int64_t>(shard->down_hwm));
    merged.GetGauge(prefix + "ring.up_depth_hwm")
        .Set(static_cast<int64_t>(shard->up_hwm));
    merged.GetCounter(prefix + "ring.down_stalls").Inc(shard->down_stalls);
    merged.GetCounter(prefix + "ring.up_stalls").Inc(shard->up_stalls);
    up_stalls += shard->up_stalls;
    agg_buffered += shard->agg.events_buffered;
    agg_shipped += shard->agg.events_shipped;
  }
  merged.GetCounter("sharded.worker_stalls").Inc(up_stalls);
  merged.GetCounter("sharded.agg_events_buffered").Inc(agg_buffered);
  merged.GetCounter("sharded.agg_events_shipped").Inc(agg_shipped);
  merged.GetGauge("sharded.shards").Set(shards());
  return merged;
}

size_t ShardedIds::TrackedState() const {
  size_t total =
      media_owner_.size() + invite_windows_.size() + drdos_windows_.size();
  for (const auto& shard : shards_) {
    const CallStateFactBase& fb = shard->vids->fact_base();
    total += fb.call_count() + fb.keyed_count() + fb.tombstone_count() +
             fb.media_index_count();
  }
  return total;
}

size_t ShardedIds::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& shard : shards_) {
    bytes += shard->vids->fact_base().MemoryBytes();
    bytes += (shard->down.capacity() * sizeof(ShardMsg) +
              shard->up.capacity() * sizeof(UpMsg));
    bytes += shard->agg.buf.capacity() * sizeof(HeldAggEvent);
    for (const auto* sketches :
         {&shard->agg.invite_sketch, &shard->agg.drdos_sketch}) {
      for (const auto& [key, sketch] : *sketches) {
        bytes += key.capacity() + sizeof(AggSketch) +
                 sketch.recent.capacity() * sizeof(int64_t);
      }
    }
  }
  bytes += media_owner_.size() * (sizeof(uint64_t) + sizeof(OwnerEntry));
  for (const auto* windows : {&invite_windows_, &drdos_windows_}) {
    for (const auto& [key, w] : *windows) {
      bytes += key.capacity() + sizeof(WinState);
    }
  }
  for (const auto* hot : {&hot_invite_, &hot_drdos_}) {
    for (const auto& [key, t] : *hot) bytes += key.capacity() + sizeof(int64_t);
  }
  for (const auto& queue : pending_) bytes += queue.size() * sizeof(AggEvent);
  return bytes;
}

}  // namespace vids::ids
