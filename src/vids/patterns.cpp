#include "vids/patterns.h"

#include "rtp/packet.h"
#include "vids/classifier.h"

namespace vids::ids {

namespace {

using efsm::ArgKey;
using efsm::Context;
using efsm::MachineDef;
using efsm::StateKind;

// Interned keys for the pattern machines' local variables — one integer
// scan per access on the per-packet path.
const ArgKey kVSsrc = ArgKey::Intern("v_ssrc");
const ArgKey kVSeq = ArgKey::Intern("v_seq");
const ArgKey kVTs = ArgKey::Intern("v_ts");
const ArgKey kVRegress = ArgKey::Intern("v_regress");
const ArgKey kVSrcIp = ArgKey::Intern("v_src_ip");
const ArgKey kVCallerTag = ArgKey::Intern("v_caller_tag");
const ArgKey kVCalleeTag = ArgKey::Intern("v_callee_tag");
const ArgKey kPckCounter = ArgKey::Intern("pck_counter");

bool IsRequest(const Context& c, std::string_view method) {
  const std::string* kind = c.event().ArgStr(argkey::kKind);
  if (kind == nullptr || *kind != "request") return false;
  const std::string* m = c.event().ArgStr(argkey::kMethod);
  return m != nullptr && *m == method;
}

bool IsFinalResponse(const Context& c, std::string_view method) {
  const std::string* kind = c.event().ArgStr(argkey::kKind);
  if (kind == nullptr || *kind != "response") return false;
  if (c.event().ArgInt(argkey::kStatus).value_or(0) < 200) return false;
  const std::string* m = c.event().ArgStr(argkey::kMethod);
  return m != nullptr && *m == method;
}

// Wrap-aware gaps between the stored stream position and the new packet.
int64_t SeqGap(const Context& c) {
  const auto prev = c.local().GetInt(kVSeq);
  const auto next = c.event().ArgInt(argkey::kSeq);
  if (!prev || !next) return 0;
  return rtp::SeqDistance(static_cast<uint16_t>(*prev),
                          static_cast<uint16_t>(*next));
}

int64_t TsGap(const Context& c) {
  const auto prev = c.local().GetInt(kVTs);
  const auto next = c.event().ArgInt(argkey::kTs);
  if (!prev || !next) return 0;
  return rtp::TimestampDistance(static_cast<uint32_t>(*prev),
                                static_cast<uint32_t>(*next));
}

bool SameSsrc(const Context& c) {
  return c.local().GetInt(kVSsrc) == c.event().ArgInt(argkey::kSsrc);
}

// A(v̄): v_i := x_i — lock onto the packet's stream position (Fig. 6).
void LockStream(Context& c) {
  auto& l = c.mutable_local();
  l.Set(kVSsrc, c.event().Arg(argkey::kSsrc));
  l.Set(kVSeq, c.event().Arg(argkey::kSeq));
  l.Set(kVTs, c.event().Arg(argkey::kTs));
}

// Generic window counter used by the flood-style patterns: the first event
// arms timer T1 and sets pck_counter = 1; each further event within the
// window increments it. Crossing `threshold` is the attack transition.
void BuildWindowCounter(MachineDef& def, const std::string& event_name,
                        std::string_view attack_label, int threshold,
                        sim::Duration window) {
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto counting = def.AddState("Packet Rcvd");
  const auto attack =
      def.AddState(std::string(attack_label), StateKind::kAttack);
  const auto timer_event = efsm::TimerEventName("T1");

  def.On(init, event_name)
      .Do([window](Context& c) {
        c.mutable_local().Set(kPckCounter, int64_t{1});
        c.StartTimer("T1", window);
      })
      .To(counting, "first packet: counter started, timer T1 armed");

  def.On(counting, event_name)
      .When([threshold](const Context& c) {
        return c.local().GetInt(kPckCounter).value_or(0) + 1 <= threshold;
      })
      .Do([](Context& c) {
        c.mutable_local().Set(
            kPckCounter, c.local().GetInt(kPckCounter).value_or(0) + 1);
      })
      .To(counting, "within threshold N");
  def.On(counting, event_name)
      .When([threshold](const Context& c) {
        return c.local().GetInt(kPckCounter).value_or(0) + 1 > threshold;
      })
      .Do([](Context& c) {
        c.mutable_local().Set(
            kPckCounter, c.local().GetInt(kPckCounter).value_or(0) + 1);
      })
      .To(attack, "surge beyond threshold N within T1");
  def.On(counting, timer_event)
      .Do([](Context& c) { c.mutable_local().Set(kPckCounter, int64_t{0}); })
      .To(init, "window over: reset");

  def.On(attack, event_name).To(attack, "flood continues");
  def.On(attack, timer_event)
      .Do([](Context& c) { c.mutable_local().Set(kPckCounter, int64_t{0}); })
      .To(init, "window over: re-arm");
}

}  // namespace

MachineDef BuildInviteFloodMachine(const DetectionConfig& config) {
  MachineDef def("invite-flood");
  def.set_report_deviations(false);
  // The distributor feeds this machine only INVITE requests for one
  // destination, so the plain SIP event drives the counter (Fig. 4).
  BuildWindowCounter(def, std::string(kSipEvent), kAttackInviteFlood,
                     config.invite_flood_threshold,
                     config.invite_flood_window);
  return def;
}

MachineDef BuildRtpFloodMachine(const DetectionConfig& config) {
  MachineDef def("rtp-flood");
  def.set_report_deviations(false);
  BuildWindowCounter(def, std::string(kRtpEvent), kAttackRtpFlood,
                     config.rtp_flood_threshold, config.rtp_flood_window);
  return def;
}

MachineDef BuildDrdosMachine(const DetectionConfig& config) {
  MachineDef def("drdos");
  def.set_report_deviations(false);
  BuildWindowCounter(def, std::string(kUnsolicitedEvent), kAttackDrdos,
                     config.drdos_threshold, config.drdos_window);
  return def;
}

MachineDef BuildMediaSpamMachine(const DetectionConfig& config) {
  MachineDef def("media-spam");
  def.set_report_deviations(false);
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto rcvd = def.AddState("Packet Rcvd");
  const auto attack =
      def.AddState(std::string(kAttackMediaSpam), StateKind::kAttack);
  const std::string rtp(kRtpEvent);
  const int64_t seq_gap = config.spam_seq_gap;
  const int64_t ts_gap = config.spam_ts_gap;
  const int64_t regress_limit = config.spam_regress_threshold;

  // Fig. 6 rule, hardened against two legitimate phenomena:
  //  * VAD talkspurts jump the timestamp with the marker bit set
  //    (RFC 3550 §5.1) while the sequence number stays contiguous, so the
  //    Δt rule only applies to unmarked packets;
  //  * losing the talkspurt-opening packet (p ≈ link loss per spurt)
  //    yields an unmarked jump with a sequence gap of 2–3, which is
  //    excused — a fabricated stream that hides in that window is still
  //    caught by the regression rule below.
  const auto is_spam_jump = [seq_gap, ts_gap](const Context& c) {
    if (!SameSsrc(c)) return false;
    const int64_t sgap = SeqGap(c);
    if (sgap > seq_gap) return true;
    const bool marker = c.event().Arg(argkey::kMarker) == efsm::Value{true};
    const bool lost_marker_window = sgap >= 2 && sgap <= 3;
    return !marker && !lost_marker_window && TsGap(c) > ts_gap;
  };
  // The genuine stream trailing an injected clone shows up as persistent
  // sequence regression (replays of numbers the clone already used).
  const auto is_regress = [](const Context& c) {
    return SameSsrc(c) && SeqGap(c) <= 0;
  };
  const auto regress_exceeded = [is_regress, regress_limit](const Context& c) {
    return is_regress(c) &&
           c.local().GetInt(kVRegress).value_or(0) + 1 >= regress_limit;
  };
  const auto count_regress = [](Context& c) {
    c.mutable_local().Set(kVRegress,
                          c.local().GetInt(kVRegress).value_or(0) + 1);
  };
  const auto lock_and_reset = [](Context& c) {
    LockStream(c);
    c.mutable_local().Set(kVRegress, int64_t{0});
  };

  def.On(init, rtp).Do(lock_and_reset).To(rcvd, "first packet: v̄ := x̄");
  def.On(rcvd, rtp)
      .When(is_spam_jump)
      .Do(LockStream)
      .To(attack, "seq/timestamp gap beyond Δn/Δt");
  def.On(rcvd, rtp)
      .When(regress_exceeded)
      .Do(count_regress)
      .To(attack, "persistent sequence regression: stream raced ahead");
  def.On(rcvd, rtp)
      .When(is_regress)
      .Do(count_regress)  // keep the (higher) locked position
      .To(rcvd, "replayed/old sequence number");
  def.On(rcvd, rtp)
      .Do(lock_and_reset)  // follow the stream (or re-lock on a new SSRC)
      .To(rcvd, "stream position updated");
  def.On(attack, rtp)
      .When([is_spam_jump, is_regress](const Context& c) {
        return !is_spam_jump(c) && !is_regress(c);
      })
      .Do(lock_and_reset)
      .To(rcvd, "stream back to normal");
  def.On(attack, rtp)
      .When(is_regress)  // genuine stream still trailing: hold the position
      .To(attack, "trailing genuine stream");
  def.On(attack, rtp).Do(LockStream).To(attack, "spam continues");
  return def;
}

MachineDef BuildRtcpByeMachine(const DetectionConfig& config) {
  // The RTCP analog of the paper's Fig. 5: the control protocol announced
  // end-of-stream; after the in-flight grace T, media with the BYE'd SSRC
  // is ghost media. One instance per media endpoint (same keyed group as
  // the spam/flood patterns).
  MachineDef def("rtcp-bye");
  def.set_report_deviations(false);
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto drain = def.AddState("draining after RTCP BYE");
  const auto watch = def.AddState("stream closed by RTCP");
  const auto attack =
      def.AddState(std::string(kAttackGhostMedia), StateKind::kAttack);
  const auto done = def.AddState("Done", StateKind::kFinal);
  const std::string rtcp(kRtcpEvent);
  const std::string rtp(kRtpEvent);
  const sim::Duration grace = config.bye_inflight_grace;
  const sim::Duration linger = config.rtp_close_linger;

  const auto is_bye = [](const Context& c) {
    const std::string* kind = c.event().ArgStr(argkey::kKind);
    return kind != nullptr && *kind == "BYE";
  };
  const auto bye_ssrc = [](const Context& c) {
    return c.local().GetInt(kVSsrc) == c.event().ArgInt(argkey::kSsrc);
  };

  def.On(init, rtp).To(init, "media flowing");
  def.On(init, rtcp)
      .When(is_bye)
      .Do([grace](Context& c) {
        c.mutable_local().Set(kVSsrc, c.event().Arg(argkey::kSsrc));
        c.StartTimer("T", grace);
      })
      .To(drain, "RTCP BYE: stream declared over, timer T started");
  def.On(init, rtcp).To(init, "SR/RR bookkeeping");

  def.On(drain, rtp).To(drain, "in-flight RTP within T");
  def.On(drain, rtcp).To(drain);
  def.On(drain, efsm::TimerEventName("T"))
      .Do([linger](Context& c) { c.StartTimer("linger", linger); })
      .To(watch, "grace over");

  def.On(watch, rtp)
      .When(bye_ssrc)
      .To(attack, "RTP continues after its own RTCP BYE");
  def.On(watch, rtp).To(watch, "other stream (endpoint reuse)");
  def.On(watch, rtcp).To(watch);
  def.On(watch, efsm::TimerEventName("linger")).To(done, "stream retired");

  def.On(attack, rtp).To(attack, "ghost media continues");
  def.On(attack, rtcp).To(attack);
  def.On(attack, efsm::TimerEventName("linger")).To(done);
  return def;
}

MachineDef BuildCancelDosMachine(const DetectionConfig&) {
  MachineDef def("cancel-dos");
  def.set_report_deviations(false);
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto pending = def.AddState("INVITE pending");
  const auto attack =
      def.AddState(std::string(kAttackCancelDos), StateKind::kAttack);
  const auto done = def.AddState("Done", StateKind::kFinal);
  const std::string sip(kSipEvent);

  def.On(init, sip)
      .When([](const Context& c) { return IsRequest(c, "INVITE"); })
      .Do([](Context& c) {
        c.mutable_local().Set(kVSrcIp, c.event().Arg(argkey::kSrcIp));
      })
      .To(pending, "INVITE outstanding");
  // A CANCEL is only legitimate from the same source that sent the INVITE
  // (or its proxy); anything else is the spoofed-CANCEL DoS of §3.1.
  def.On(pending, sip)
      .When([](const Context& c) {
        return IsRequest(c, "CANCEL") &&
               c.event().Arg(argkey::kSrcIp) == c.local().Get(kVSrcIp);
      })
      .To(done, "caller cancelled its own INVITE");
  def.On(pending, sip)
      .When([](const Context& c) {
        return IsRequest(c, "CANCEL") &&
               !(c.event().Arg(argkey::kSrcIp) == c.local().Get(kVSrcIp));
      })
      .To(attack, "CANCEL from a source other than the caller");
  def.On(pending, sip)
      .When([](const Context& c) { return IsFinalResponse(c, "INVITE"); })
      .To(done, "INVITE completed: CANCEL window closed");
  def.On(attack, sip).To(attack, "post-attack traffic");
  return def;
}

MachineDef BuildHijackMachine(const DetectionConfig&) {
  MachineDef def("call-hijack");
  def.set_report_deviations(false);
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto watching = def.AddState("Dialog active");
  const auto attack =
      def.AddState(std::string(kAttackHijack), StateKind::kAttack);
  const auto done = def.AddState("Done", StateKind::kFinal);
  const std::string sip(kSipEvent);

  const auto known_tag = [](const Context& c) {
    const std::string* tag = c.event().ArgStr(argkey::kFromTag);
    if (tag == nullptr) return false;
    const std::string* caller =
        std::get_if<std::string>(&c.local().Get(kVCallerTag));
    if (caller != nullptr && *caller == *tag) return true;
    const std::string* callee =
        std::get_if<std::string>(&c.local().Get(kVCalleeTag));
    return callee != nullptr && *callee == *tag;
  };

  def.On(init, sip)
      .When([](const Context& c) { return IsRequest(c, "INVITE"); })
      .Do([](Context& c) {
        c.mutable_local().Set(kVCallerTag, c.event().Arg(argkey::kFromTag));
      })
      .To(watching, "dialog opened");
  def.On(watching, sip)
      .When([](const Context& c) {
        const std::string* kind = c.event().ArgStr(argkey::kKind);
        if (kind == nullptr || *kind != "response") return false;
        if (c.event().ArgInt(argkey::kStatus).value_or(0) / 100 != 2) {
          return false;
        }
        const std::string* m = c.event().ArgStr(argkey::kMethod);
        return m != nullptr && *m == "INVITE";
      })
      .Do([](Context& c) {
        // Learn the callee's dialog tag from the 2xx.
        c.mutable_local().Set(kVCalleeTag, c.event().Arg(argkey::kToTag));
      })
      .To(watching, "dialog confirmed");
  def.On(watching, sip)
      .When([known_tag](const Context& c) {
        return IsRequest(c, "INVITE") && known_tag(c);
      })
      .To(watching, "re-INVITE by a dialog participant");
  def.On(watching, sip)
      .When([known_tag](const Context& c) {
        return IsRequest(c, "INVITE") && !known_tag(c);
      })
      .To(attack, "in-dialog INVITE with a tag foreign to the dialog");
  def.On(watching, sip)
      .When([](const Context& c) { return IsFinalResponse(c, "BYE"); })
      .To(done, "dialog closed");
  def.On(attack, sip).To(attack, "post-attack traffic");
  return def;
}

}  // namespace vids::ids
