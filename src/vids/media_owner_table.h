// Shared media-ownership routing view for multi-producer ingest.
//
// PR 5's router kept the media-endpoint → owning-shard index in a plain
// unordered_map, which was fine while exactly one thread routed packets.
// With N producer threads routing concurrently (DESIGN.md §15), the index
// becomes the one piece of routing state they must share. This table makes
// the read path lock-free and the write path (SDP claims — rare next to
// media packets) mutex-serialized:
//
//  - Open addressing over a power-of-two slot array. Every reader-visible
//    field is an atomic: the 48-bit PackedKey, the current and previous
//    claim (each a packed (time << 8 | shard) word), and a last-seen
//    refresh stamp. A lookup is a probe plus two acquire loads; it takes
//    no lock and never blocks a claim.
//  - Two-deep claim history, looked up by the PACKET's position in the
//    global arrival order, not by current state: OwnerAt(key, t, seq)
//    answers "who owned this endpoint when arrival #seq happened" — the
//    owner as of the newest claim whose own sequence number precedes seq.
//    Because arrival timestamps are non-decreasing in seq, seq order IS
//    (when, seq) lexicographic order, so a producer that routes a packet
//    sequenced before a renegotiation it has already observed still routes
//    it to the era's owner: routing is a pure function of (key, seq) and
//    the producer count cannot change it. Packets older than both recorded
//    eras miss (the caller hash-routes and counts a route escalation — the
//    bounded slow path for >2 claims racing between two reads).
//  - Each entry's claim pair is published under a per-entry seqlock
//    (`version`, odd while a writer is mid-update), so a lock-free reader
//    gets a CONSISTENT (cur, cur_seq, prev, prev_seq) quadruple even while
//    a claim lands — the seq filter above is only exact if the claim word
//    and its sequence number are read as one unit. Writers insert/update
//    under `claim_mutex_`, publishing each entry's key last (release).
//    Growth allocates a doubled table, rehashes under the mutex, and
//    republishes the table pointer; retired tables are kept until
//    destruction (geometric doubling bounds them to < one current table),
//    so a reader mid-probe on the old table stays valid.
//
// Completeness of the visible claim set is the DRIVER's job, not the
// table's (sharded_ids.h, "claim-ordered ingest contract"): every
// claim-carrying packet must be ingested — its ApplyClaim returned —
// before any later-sequenced packet is handed to another producer. Under
// that contract, when a producer routes arrival #seq every claim with a
// smaller sequence number is already in the table (claims with larger
// sequence numbers may be too — the seq filter excludes them), and the
// driver's dispatch handoff (release on its queue, acquire on the pop)
// carries the happens-before edge that makes those writes visible,
// including across a table republication.
//
// Prune() and the destructor require quiescent readers (the engine calls
// Prune only inside Flush(), whose contract already demands quiescent
// producers).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace vids::ids {

class MediaOwnerTable {
 public:
  /// Up to two ownership-transition edges produced by one claim: the losing
  /// shard must drop its endpoint counters. `early` marks the first-claim
  /// retract aimed at the hash-fallback shard (pre-negotiation media).
  struct RetractEdge {
    int shard = -1;
    bool early = false;
  };
  struct ClaimResult {
    RetractEdge edges[2];
    int edge_count = 0;
    /// The claim predated both recorded eras and was dropped (bounded
    /// history; counted by the caller as a stale claim).
    bool dropped_stale = false;
  };

  explicit MediaOwnerTable(size_t capacity = 1024) {
    size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    table_.store(NewTable(cap), std::memory_order_release);
  }

  MediaOwnerTable(const MediaOwnerTable&) = delete;
  MediaOwnerTable& operator=(const MediaOwnerTable&) = delete;

  /// Lock-free reader: the shard owning `key` as of global arrival #`seq`
  /// (the newest claim sequenced strictly before it), or -1 when unknown.
  /// `t_ns` is the packet's time, used only to refresh the entry's idle
  /// stamp. `pre_history` is set when an entry exists but both recorded
  /// claims postdate `seq` (caller hash-routes and counts it).
  int OwnerAt(uint64_t key, int64_t t_ns, uint64_t seq,
              bool& pre_history) const {
    pre_history = false;
    Table* tab = table_.load(std::memory_order_acquire);
    size_t idx = Mix(key) & tab->mask;
    for (;;) {
      Entry& e = tab->slots[idx];
      const uint64_t k = e.key.load(std::memory_order_acquire);
      if (k == 0) return -1;
      if (k == key) {
        // Seqlock read of the claim quadruple: retry while a writer is
        // mid-update (odd version) or updated underneath us. Claims are
        // rare next to media packets, so the retry is all but never taken.
        // Fence-free formulation (atomic_thread_fence is rejected under
        // -fsanitize=thread): the field loads are acquire, so any load
        // that observes a writer's release field store also sees the
        // writer's preceding odd version — the re-check below can never
        // validate a torn read. The acquire loads also pin the re-check
        // after every field load in program order.
        uint64_t cur, cur_seq, prev, prev_seq;
        for (;;) {
          const uint32_t v1 = e.version.load(std::memory_order_acquire);
          if ((v1 & 1U) == 0) {
            cur = e.cur.load(std::memory_order_acquire);
            cur_seq = e.cur_seq.load(std::memory_order_acquire);
            prev = e.prev.load(std::memory_order_acquire);
            prev_seq = e.prev_seq.load(std::memory_order_acquire);
            if (e.version.load(std::memory_order_relaxed) == v1) break;
          }
        }
        if (cur == 0) return -1;
        if (cur_seq < seq) {
          e.last_seen.store(t_ns, std::memory_order_relaxed);
          return UnpackShard(cur);
        }
        if (prev != 0 && prev_seq < seq) {
          e.last_seen.store(t_ns, std::memory_order_relaxed);
          return UnpackShard(prev);
        }
        pre_history = true;
        return -1;
      }
      idx = (idx + 1) & tab->mask;
    }
  }

  /// Serialized writer: endpoint `key` is claimed by `shard` at logical
  /// time (`t_ns`, `seq`) — the global claim order is last-writer-wins by
  /// that pair, so every producer applying the same claim set converges on
  /// the same history regardless of arrival interleaving. Returns the
  /// ownership-transition edges this claim creates; the caller pushes the
  /// matching kRetractMedia messages on its own lanes.
  ClaimResult ApplyClaim(uint64_t key, int shard, int64_t t_ns, uint64_t seq,
                         int hash_shard) {
    ClaimResult r;
    std::lock_guard<std::mutex> lock(claim_mutex_);
    Table* tab = table_.load(std::memory_order_relaxed);
    if ((size_ + 1) * 4 > (tab->mask + 1) * 3) tab = Grow(tab);
    Entry& e = FindSlot(*tab, key);
    if (e.key.load(std::memory_order_relaxed) == 0) {
      // First claim for this endpoint's key: publish the claim before the
      // key so a racing reader that finds the key sees a complete entry
      // (the entry is unreachable until the key lands, so no seqlock
      // bracket is needed here).
      e.cur.store(Pack(t_ns, shard), std::memory_order_relaxed);
      e.cur_seq.store(seq, std::memory_order_relaxed);
      e.last_seen.store(t_ns, std::memory_order_relaxed);
      e.key.store(key, std::memory_order_release);
      ++size_;
      if (hash_shard != shard) r.edges[r.edge_count++] = {hash_shard, true};
      return r;
    }
    const uint64_t cur = e.cur.load(std::memory_order_relaxed);
    const int64_t ct = UnpackTime(cur);
    const int cs = UnpackShard(cur);
    const uint64_t cseq = e.cur_seq.load(std::memory_order_relaxed);
    if (t_ns > ct || (t_ns == ct && seq > cseq)) {
      // In-order claim: the current era ends at (t_ns, seq).
      WriteLocked(e, [&] {  // release stores: see the WriteLocked contract
        e.prev.store(cur, std::memory_order_release);
        e.prev_seq.store(cseq, std::memory_order_release);
        e.cur.store(Pack(t_ns, shard), std::memory_order_release);
        e.cur_seq.store(seq, std::memory_order_release);
      });
      if (t_ns > e.last_seen.load(std::memory_order_relaxed)) {
        e.last_seen.store(t_ns, std::memory_order_relaxed);
      }
      if (cs != shard) r.edges[r.edge_count++] = {cs, false};
      return r;
    }
    if (t_ns == ct && seq == cseq) return r;  // duplicate apply
    // Stale claim: another producer already applied a newer one. Slot this
    // era in as `prev` so seq-keyed lookups stay exact, and emit BOTH of
    // its edges — the entry edge (whoever owned before t_ns loses) and the
    // exit edge (this era's owner loses at ct, which the newer claim's
    // applier could not have emitted because it never saw this era).
    const uint64_t prev = e.prev.load(std::memory_order_relaxed);
    if (prev == 0) {
      WriteLocked(e, [&] {
        e.prev.store(Pack(t_ns, shard), std::memory_order_release);
        e.prev_seq.store(seq, std::memory_order_release);
      });
      if (hash_shard != shard) r.edges[r.edge_count++] = {hash_shard, true};
      if (shard != cs) r.edges[r.edge_count++] = {shard, false};
      return r;
    }
    const int64_t pt = UnpackTime(prev);
    const int ps = UnpackShard(prev);
    if (t_ns > pt || (t_ns == pt && shard == ps)) {
      WriteLocked(e, [&] {
        e.prev.store(Pack(t_ns, shard), std::memory_order_release);
        e.prev_seq.store(seq, std::memory_order_release);
      });
      if (ps != shard) r.edges[r.edge_count++] = {ps, false};
      if (shard != cs) r.edges[r.edge_count++] = {shard, false};
      return r;
    }
    r.dropped_stale = true;  // older than both recorded eras
    return r;
  }

  /// Drops entries idle past `horizon_ns` (no lookup or claim refreshed
  /// them) by rebuilding the live set into a fresh table. Requires
  /// quiescent readers — called from the engine's Flush() barrier only.
  void Prune(int64_t now_ns, int64_t horizon_ns) {
    std::lock_guard<std::mutex> lock(claim_mutex_);
    Table* tab = table_.load(std::memory_order_relaxed);
    size_t live = 0;
    for (size_t i = 0; i <= tab->mask; ++i) {
      const Entry& e = tab->slots[i];
      if (e.key.load(std::memory_order_relaxed) != 0 &&
          now_ns - e.last_seen.load(std::memory_order_relaxed) <= horizon_ns) {
        ++live;
      }
    }
    size_t cap = 16;
    while (cap * 3 < live * 4) cap <<= 1;
    Table* fresh = NewTable(cap);
    for (size_t i = 0; i <= tab->mask; ++i) {
      Entry& e = tab->slots[i];
      const uint64_t k = e.key.load(std::memory_order_relaxed);
      if (k == 0 ||
          now_ns - e.last_seen.load(std::memory_order_relaxed) > horizon_ns) {
        continue;
      }
      CopyEntry(e, FindSlot(*fresh, k), k);
    }
    size_ = live;
    table_.store(fresh, std::memory_order_release);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(claim_mutex_);
    return size_;
  }

  size_t MemoryBytes() const {
    std::lock_guard<std::mutex> lock(claim_mutex_);
    size_t bytes = sizeof(*this);
    for (const auto& t : all_tables_) {
      bytes += (t->mask + 1) * sizeof(Entry) + sizeof(Table);
    }
    return bytes;
  }

 private:
  struct Entry {
    std::atomic<uint64_t> key{0};  // 0 = empty (PackedKey 0 is unroutable)
    /// Packed claims: ((t_ns << 8) | shard) + 1; 0 = none. 55 bits of
    /// nanoseconds (~417 days of stream time) and 8 bits of shard index —
    /// ShardedConfig clamps shards accordingly. The *_seq fields carry each
    /// claim's global arrival number; the quadruple is read under the
    /// per-entry seqlock below.
    std::atomic<uint64_t> cur{0};
    std::atomic<uint64_t> cur_seq{0};
    std::atomic<uint64_t> prev{0};
    std::atomic<uint64_t> prev_seq{0};
    std::atomic<int64_t> last_seen{0};
    /// Per-entry seqlock: odd while a writer is mid-update.
    std::atomic<uint32_t> version{0};
  };
  struct Table {
    explicit Table(size_t cap) : slots(cap), mask(cap - 1) {}
    std::vector<Entry> slots;
    size_t mask;
  };

  static uint64_t Pack(int64_t t_ns, int shard) {
    return ((static_cast<uint64_t>(t_ns) << 8) |
            static_cast<uint64_t>(shard)) +
           1;
  }
  static int64_t UnpackTime(uint64_t v) {
    return static_cast<int64_t>((v - 1) >> 8);
  }
  static int UnpackShard(uint64_t v) { return static_cast<int>((v - 1) & 0xff); }

  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Table* NewTable(size_t cap) {
    all_tables_.push_back(std::make_unique<Table>(cap));
    return all_tables_.back().get();
  }

  /// Probe for `key`'s slot (or the empty slot where it belongs). Writer
  /// side only (mutex held); the load factor cap guarantees termination.
  static Entry& FindSlot(Table& tab, uint64_t key) {
    size_t idx = Mix(key) & tab.mask;
    for (;;) {
      Entry& e = tab.slots[idx];
      const uint64_t k = e.key.load(std::memory_order_relaxed);
      if (k == 0 || k == key) return e;
      idx = (idx + 1) & tab.mask;
    }
  }

  /// Seqlock writer bracket: version goes odd, the fields land, version
  /// goes even. Fence-free (atomic_thread_fence is rejected under
  /// -fsanitize=thread): `fn` must store every field with RELEASE — each
  /// such store orders the odd version store before itself, so a reader
  /// observing any new field also observes the odd version and retries —
  /// and the final release store orders the fields before the even
  /// version. Callers hold claim_mutex_, so versions never contend
  /// between writers.
  template <typename Fn>
  static void WriteLocked(Entry& e, Fn&& fn) {
    const uint32_t v = e.version.load(std::memory_order_relaxed);
    e.version.store(v + 1, std::memory_order_relaxed);
    fn();
    e.version.store(v + 2, std::memory_order_release);
  }

  static void CopyEntry(Entry& from, Entry& to, uint64_t key) {
    // `to` lives in a not-yet-published table — plain releases suffice.
    to.cur.store(from.cur.load(std::memory_order_relaxed),
                 std::memory_order_release);
    to.cur_seq.store(from.cur_seq.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    to.prev.store(from.prev.load(std::memory_order_relaxed),
                  std::memory_order_release);
    to.prev_seq.store(from.prev_seq.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    to.last_seen.store(from.last_seen.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    to.key.store(key, std::memory_order_release);
  }

  Table* Grow(Table* old) {
    Table* fresh = NewTable((old->mask + 1) * 2);
    for (size_t i = 0; i <= old->mask; ++i) {
      Entry& e = old->slots[i];
      const uint64_t k = e.key.load(std::memory_order_relaxed);
      if (k != 0) CopyEntry(e, FindSlot(*fresh, k), k);
    }
    table_.store(fresh, std::memory_order_release);
    return fresh;
  }

  mutable std::mutex claim_mutex_;
  std::atomic<Table*> table_{nullptr};
  std::vector<std::unique_ptr<Table>> all_tables_;  // current + retired
  size_t size_ = 0;
};

}  // namespace vids::ids
