#include "vids/fact_base.h"

#include <algorithm>

#include "vids/classifier.h"

namespace vids::ids {

namespace {

// keyed_bin_ keys: the endpoint/IP payload occupies bits 0..47, the family
// tag sits above so media and DRDoS keys can share one map.
constexpr uint64_t kMediaTag = uint64_t{1} << 56;
constexpr uint64_t kDrdosTag = uint64_t{2} << 56;

uint64_t MediaKey(const net::Endpoint& endpoint) {
  return kMediaTag | endpoint.PackedKey();
}

uint64_t DrdosKey(net::IpAddress victim) {
  return kDrdosTag | victim.bits();
}

}  // namespace

CallStateFactBase::CallStateFactBase(sim::Scheduler& scheduler,
                                     const DetectionConfig& config,
                                     efsm::Observer* observer,
                                     obs::MetricsRegistry* registry)
    : scheduler_(scheduler),
      config_(config),
      observer_(observer),
      sip_spec_(BuildSipSpecMachine(config)),
      rtp_spec_(BuildRtpSpecMachine(config)),
      scenarios_(config) {
  if (registry != nullptr) {
    engine_metrics_ = efsm::EngineMetrics::Registered(*registry);
    m_calls_created_ = &registry->GetCounter("vids.calls_created");
    m_calls_deleted_ = &registry->GetCounter("vids.calls_deleted");
    m_sweeps_ = &registry->GetCounter("vids.sweeps");
    m_sweep_ns_ = &registry->GetHistogram("vids.sweep_ns");
    m_active_calls_ = &registry->GetGauge("vids.active_calls");
    m_keyed_groups_ = &registry->GetGauge("vids.keyed_groups");
    m_media_index_ = &registry->GetGauge("vids.media_index_size");
    m_tombstones_ = &registry->GetGauge("vids.tombstones");
  }
}

std::string CallStateFactBase::DecodeFactRecord(const obs::Record& record) {
  if (record.type != obs::RecordType::kFactAssert &&
      record.type != obs::RecordType::kFactRetract) {
    return {};
  }
  const uint64_t tag = record.aux & FactAux::kTagMask;
  const net::Endpoint endpoint{
      net::IpAddress(static_cast<uint32_t>((record.aux >> 16) & 0xFFFFFFFF)),
      static_cast<uint16_t>(record.aux & 0xFFFF)};
  switch (tag) {
    case FactAux::kCallCreated:
      return "fact: call state created";
    case FactAux::kMediaIndexed:
      return "fact: media endpoint " + endpoint.ToString() +
             " indexed to this call";
    case FactAux::kMediaRetracted:
      return "fact: media endpoint " + endpoint.ToString() +
             " re-pointed away from this call";
    default:
      return {};
  }
}

void CallStateFactBase::UpdateGauges() {
  m_active_calls_->Set(static_cast<int64_t>(calls_.size()));
  m_keyed_groups_->Set(static_cast<int64_t>(keyed_count()));
  m_media_index_->Set(static_cast<int64_t>(media_index_.size()));
  m_tombstones_->Set(static_cast<int64_t>(tombstones_.size()));
}

efsm::MachineGroup& CallStateFactBase::GetOrCreateCall(
    const std::string& call_id, bool& created) {
  auto it = calls_.find(call_id);
  if (it != calls_.end()) {
    created = false;
    it->second.last_event = scheduler_.Now();
    return *it->second.group;
  }
  created = true;
  ++calls_created_;
  m_calls_created_->Inc();
  std::unique_ptr<efsm::MachineGroup> group;
  if (!group_pool_.empty()) {
    // Recycled group: already carries the call-group machine set and
    // channel routing (parked in initial configuration by Sweep), so only
    // the name needs to change hands.
    group = std::move(group_pool_.back());
    group_pool_.pop_back();
    group->ResetForReuse(call_id);
  } else {
    group = std::make_unique<efsm::MachineGroup>(call_id, scheduler_,
                                                 observer_,
                                                 &engine_metrics_);
    auto& sip = group->AddMachine(sip_spec_, std::string(kSipMachineName));
    auto& rtp = group->AddMachine(rtp_spec_, std::string(kRtpMachineName));
    (void)sip;
    group->AddMachine(scenarios_.cancel_dos, "cancel-dos");
    group->AddMachine(scenarios_.hijack, "hijack");
    if (config_.enable_cross_protocol) {
      group->RouteChannel(std::string(kSipToRtpChannel), rtp);
    }
  }
  {
    obs::Record rec;
    rec.type = obs::RecordType::kFactAssert;
    rec.when_ns = scheduler_.Now().nanos();
    rec.aux = FactAux::kCallCreated;
    group->flight_recorder().Record(rec);
  }
  auto& entry = calls_[call_id];
  entry.group = std::move(group);
  entry.last_event = scheduler_.Now();
  m_active_calls_->Set(static_cast<int64_t>(calls_.size()));
  ArmSweepTimer();
  return *entry.group;
}

efsm::MachineGroup* CallStateFactBase::FindCall(std::string_view call_id) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return nullptr;
  return it->second.group.get();
}

efsm::MachineGroup& CallStateFactBase::GetOrCreateKeyed(
    KeyedKind kind, const std::string& key) {
  switch (kind) {
    case KeyedKind::kMediaEndpoint:
      if (const auto endpoint = net::Endpoint::Parse(key)) {
        return GetOrCreateMediaGroup(*endpoint);
      }
      break;
    case KeyedKind::kDrdos:
      if (const auto victim = net::IpAddress::Parse(key)) {
        return GetOrCreateDrdosGroup(*victim);
      }
      break;
    case KeyedKind::kInviteFlood:
      return GetOrCreateInviteFlood(key);
  }
  // Unparseable media/victim keys.
  const std::string name =
      (kind == KeyedKind::kMediaEndpoint ? "media|" : "drdos|") + key;
  auto it = keyed_str_.find(name);
  if (it != keyed_str_.end()) {
    it->second.last_event = scheduler_.Now();
    return *it->second.group;
  }
  auto group = std::make_unique<efsm::MachineGroup>(name, scheduler_,
                                                    observer_,
                                                    &engine_metrics_);
  switch (kind) {
    case KeyedKind::kInviteFlood:
      break;  // handled above
    case KeyedKind::kMediaEndpoint:
      group->AddMachine(scenarios_.media_spam, "media-spam");
      group->AddMachine(scenarios_.rtp_flood, "rtp-flood");
      group->AddMachine(scenarios_.rtcp_bye, "rtcp-bye");
      break;
    case KeyedKind::kDrdos:
      group->AddMachine(scenarios_.drdos, "drdos");
      break;
  }
  auto& entry = keyed_str_[name];
  entry.group = std::move(group);
  entry.last_event = scheduler_.Now();
  m_keyed_groups_->Set(static_cast<int64_t>(keyed_count()));
  ArmSweepTimer();
  return *entry.group;
}

efsm::MachineGroup& CallStateFactBase::GetOrCreateInviteFlood(
    std::string_view aor) {
  // Runs per INVITE request: compose the map key in the reused scratch
  // string and find transparently so the hit path never allocates.
  flood_key_scratch_.assign("flood|");
  flood_key_scratch_.append(aor);
  auto it = keyed_str_.find(flood_key_scratch_);
  if (it != keyed_str_.end()) {
    it->second.last_event = scheduler_.Now();
    return *it->second.group;
  }
  auto group = std::make_unique<efsm::MachineGroup>(
      flood_key_scratch_, scheduler_, observer_, &engine_metrics_);
  group->AddMachine(scenarios_.invite_flood, "invite-flood");
  auto& entry = keyed_str_[flood_key_scratch_];
  entry.group = std::move(group);
  entry.last_event = scheduler_.Now();
  m_keyed_groups_->Set(static_cast<int64_t>(keyed_count()));
  ArmSweepTimer();
  return *entry.group;
}

efsm::MachineGroup& CallStateFactBase::GetOrCreateMediaGroup(
    const net::Endpoint& endpoint) {
  auto [it, inserted] = keyed_bin_.try_emplace(MediaKey(endpoint));
  Entry& entry = it->second;
  entry.last_event = scheduler_.Now();
  if (!inserted) return *entry.group;
  auto group = std::make_unique<efsm::MachineGroup>(
      "media|" + endpoint.ToString(), scheduler_, observer_,
      &engine_metrics_);
  group->AddMachine(scenarios_.media_spam, "media-spam");
  group->AddMachine(scenarios_.rtp_flood, "rtp-flood");
  group->AddMachine(scenarios_.rtcp_bye, "rtcp-bye");
  entry.group = std::move(group);
  m_keyed_groups_->Set(static_cast<int64_t>(keyed_count()));
  ArmSweepTimer();
  return *entry.group;
}

efsm::MachineGroup& CallStateFactBase::GetOrCreateDrdosGroup(
    net::IpAddress victim) {
  auto [it, inserted] = keyed_bin_.try_emplace(DrdosKey(victim));
  Entry& entry = it->second;
  entry.last_event = scheduler_.Now();
  if (!inserted) return *entry.group;
  auto group = std::make_unique<efsm::MachineGroup>(
      "drdos|" + victim.ToString(), scheduler_, observer_,
      &engine_metrics_);
  group->AddMachine(scenarios_.drdos, "drdos");
  entry.group = std::move(group);
  m_keyed_groups_->Set(static_cast<int64_t>(keyed_count()));
  ArmSweepTimer();
  return *entry.group;
}

bool CallStateFactBase::IsTombstoned(std::string_view call_id) const {
  return tombstones_.find(call_id) != tombstones_.end();
}

void CallStateFactBase::IndexMedia(const net::Endpoint& endpoint,
                                   const std::string& call_id) {
  const uint64_t key = endpoint.PackedKey();
  const auto call_it = calls_.find(call_id);
  efsm::MachineGroup* group =
      call_it != calls_.end() ? call_it->second.group.get() : nullptr;
  auto media_it = media_index_.find(key);
  if (media_it == media_index_.end()) {
    // Never create an index entry for a call that does not exist: the
    // reverse index that cleans media_index_ on deletion lives in the call
    // entry, so an ownerless entry would leak forever.
    if (group == nullptr) return;
    media_it = media_index_.try_emplace(key).first;
    ArmSweepTimer();
  }
  MediaEntry& media = media_it->second;
  if (media.call_id == call_id && media.group == group) return;  // no change
  if (media.group != nullptr && media.group != group) {
    // Re-negotiated to another call: the old call's flight log shows the
    // endpoint leaving (the media-hijack story reads directly off this).
    obs::Record rec;
    rec.type = obs::RecordType::kFactRetract;
    rec.when_ns = scheduler_.Now().nanos();
    rec.aux = FactAux::kMediaRetracted | key;
    media.group->flight_recorder().Record(rec);
  }
  media.call_id = call_id;
  media.group = group;
  if (call_it != calls_.end()) {
    auto& keys = call_it->second.media_keys;
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  if (group != nullptr) {
    obs::Record rec;
    rec.type = obs::RecordType::kFactAssert;
    rec.when_ns = scheduler_.Now().nanos();
    rec.aux = FactAux::kMediaIndexed | key;
    group->flight_recorder().Record(rec);
  }
  m_media_index_->Set(static_cast<int64_t>(media_index_.size()));
}

void CallStateFactBase::RetractMedia(const net::Endpoint& endpoint) {
  const uint64_t key = endpoint.PackedKey();
  const auto it = media_index_.find(key);
  if (it == media_index_.end()) return;
  if (it->second.group != nullptr) {
    obs::Record rec;
    rec.type = obs::RecordType::kFactRetract;
    rec.when_ns = scheduler_.Now().nanos();
    rec.aux = FactAux::kMediaRetracted | key;
    it->second.group->flight_recorder().Record(rec);
  }
  // The owning call's reverse media_keys entry stays; Sweep's ownership
  // check tolerates keys that no longer resolve to this call.
  media_index_.erase(it);
  m_media_index_->Set(static_cast<int64_t>(media_index_.size()));
}

void CallStateFactBase::DropMediaKeyedGroup(const net::Endpoint& endpoint) {
  const auto it = keyed_bin_.find(MediaKey(endpoint));
  if (it == keyed_bin_.end()) return;
  if (sweep_listener_) {
    // Same contract as a sweep reclaim: the analysis engine evicts the
    // group's alert-dedup signatures together with the state.
    const std::vector<std::string> reclaimed{it->second.group->name()};
    sweep_listener_(scheduler_.Now(), reclaimed);
  }
  keyed_bin_.erase(it);
  m_keyed_groups_->Set(static_cast<int64_t>(keyed_count()));
}

std::optional<std::string> CallStateFactBase::CallByMedia(
    const net::Endpoint& endpoint) const {
  const auto it = media_index_.find(endpoint.PackedKey());
  if (it == media_index_.end()) return std::nullopt;
  return it->second.call_id;
}

efsm::MachineGroup* CallStateFactBase::FindGroupByMedia(
    const net::Endpoint& endpoint) const {
  const auto it = media_index_.find(endpoint.PackedKey());
  if (it == media_index_.end()) return nullptr;
  return it->second.group;
}

bool CallStateFactBase::CallComplete(const efsm::MachineGroup& group) const {
  const auto& machines = group.machines();
  for (const auto& machine : machines) {
    if (machine->name() == kSipMachineName && !machine->retired()) {
      return false;
    }
    if (machine->name() == kRtpMachineName && !machine->retired() &&
        machine->state() != machine->def().initial_state()) {
      return false;
    }
  }
  return true;
}

void CallStateFactBase::ArmSweepTimer() {
  if (scheduler_.IsPending(sweep_event_)) return;
  sweep_event_ = scheduler_.ScheduleAfter(config_.sweep_interval, [this] {
    Sweep(scheduler_.Now());
    // The fired event is no longer pending, so this re-arms. An empty fact
    // base schedules nothing; the next state creation re-arms the chain.
    if (HasTrackedState()) ArmSweepTimer();
  });
}

void CallStateFactBase::Sweep(sim::Time now) {
  if (now < next_sweep_) return;
  next_sweep_ = now + config_.sweep_interval;
  m_sweeps_->Inc();
  const int64_t sweep_start = obs::MonotonicNanos();
  // Names of the groups reclaimed by this sweep, for the sweep listener
  // (the analysis engine evicts their alert-dedup signatures).
  std::vector<std::string> reclaimed;

  for (auto it = calls_.begin(); it != calls_.end();) {
    const bool complete = CallComplete(*it->second.group);
    const bool idle =
        now - it->second.last_event > config_.call_idle_timeout;
    if (complete || idle) {
      tombstones_[it->first] = now + config_.tombstone_ttl;
      ++calls_deleted_;
      m_calls_deleted_->Inc();
      // Drop this call's media-endpoint index entries via the reverse
      // index. The ownership check keeps endpoints that were re-negotiated
      // to another call in the meantime.
      for (const uint64_t key : it->second.media_keys) {
        const auto media_it = media_index_.find(key);
        if (media_it != media_index_.end() &&
            media_it->second.call_id == it->first) {
          media_index_.erase(media_it);
        }
      }
      reclaimed.push_back(it->first);
      if (group_pool_.size() < kGroupPoolCap) {
        // Park the group in initial configuration. The reset happens here,
        // not at reuse, because a parked group must not keep live timers —
        // a pending expiry would fire into a machine no call owns.
        it->second.group->ResetForReuse(std::string());
        group_pool_.push_back(std::move(it->second.group));
      }
      it = calls_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = keyed_str_.begin(); it != keyed_str_.end();) {
    if (now - it->second.last_event > config_.keyed_idle_timeout) {
      reclaimed.push_back(it->first);
      it = keyed_str_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = keyed_bin_.begin(); it != keyed_bin_.end();) {
    if (now - it->second.last_event > config_.keyed_idle_timeout) {
      reclaimed.push_back(it->second.group->name());
      it = keyed_bin_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(tombstones_,
                [now](const auto& kv) { return kv.second <= now; });
  if (sweep_listener_) sweep_listener_(now, reclaimed);
  m_sweep_ns_->Record(obs::MonotonicNanos() - sweep_start);
  UpdateGauges();
}

size_t CallStateFactBase::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [call_id, entry] : calls_) {
    bytes += call_id.capacity() + sizeof(Entry) + entry.group->MemoryBytes() +
             entry.media_keys.capacity() * sizeof(uint64_t);
  }
  for (const auto& [key, entry] : keyed_str_) {
    bytes += key.capacity() + sizeof(Entry) + entry.group->MemoryBytes();
  }
  for (const auto& [key, entry] : keyed_bin_) {
    bytes += sizeof(uint64_t) + sizeof(Entry) + entry.group->MemoryBytes();
  }
  for (const auto& [key, expiry] : tombstones_) {
    bytes += key.capacity() + sizeof(sim::Time);
  }
  for (const auto& [key, media] : media_index_) {
    bytes += sizeof(uint64_t) + sizeof(MediaEntry) + media.call_id.capacity();
  }
  for (const auto& group : group_pool_) bytes += group->MemoryBytes();
  return bytes;
}

std::optional<size_t> CallStateFactBase::CallMemoryBytes(
    const std::string& call_id) const {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return std::nullopt;
  return it->second.group->MemoryBytes();
}

}  // namespace vids::ids
