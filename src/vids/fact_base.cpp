#include "vids/fact_base.h"

#include "vids/classifier.h"

namespace vids::ids {

namespace {

std::string KeyedName(KeyedKind kind, const std::string& key) {
  switch (kind) {
    case KeyedKind::kInviteFlood: return "flood|" + key;
    case KeyedKind::kMediaEndpoint: return "media|" + key;
    case KeyedKind::kDrdos: return "drdos|" + key;
  }
  return key;
}

}  // namespace

CallStateFactBase::CallStateFactBase(sim::Scheduler& scheduler,
                                     const DetectionConfig& config,
                                     efsm::Observer* observer)
    : scheduler_(scheduler),
      config_(config),
      observer_(observer),
      sip_spec_(BuildSipSpecMachine(config)),
      rtp_spec_(BuildRtpSpecMachine(config)),
      scenarios_(config) {}

efsm::MachineGroup& CallStateFactBase::GetOrCreateCall(
    const std::string& call_id, bool& created) {
  auto it = calls_.find(call_id);
  if (it != calls_.end()) {
    created = false;
    it->second.last_event = scheduler_.Now();
    return *it->second.group;
  }
  created = true;
  ++calls_created_;
  auto group = std::make_unique<efsm::MachineGroup>(call_id, scheduler_,
                                                    observer_);
  auto& sip = group->AddMachine(sip_spec_, std::string(kSipMachineName));
  auto& rtp = group->AddMachine(rtp_spec_, std::string(kRtpMachineName));
  (void)sip;
  group->AddMachine(scenarios_.cancel_dos, "cancel-dos");
  group->AddMachine(scenarios_.hijack, "hijack");
  if (config_.enable_cross_protocol) {
    group->RouteChannel(std::string(kSipToRtpChannel), rtp);
  }
  auto& entry = calls_[call_id];
  entry.group = std::move(group);
  entry.last_event = scheduler_.Now();
  return *entry.group;
}

efsm::MachineGroup* CallStateFactBase::FindCall(const std::string& call_id) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return nullptr;
  return it->second.group.get();
}

efsm::MachineGroup& CallStateFactBase::GetOrCreateKeyed(
    KeyedKind kind, const std::string& key) {
  const std::string name = KeyedName(kind, key);
  auto it = keyed_.find(name);
  if (it != keyed_.end()) {
    it->second.last_event = scheduler_.Now();
    return *it->second.group;
  }
  auto group =
      std::make_unique<efsm::MachineGroup>(name, scheduler_, observer_);
  switch (kind) {
    case KeyedKind::kInviteFlood:
      group->AddMachine(scenarios_.invite_flood, "invite-flood");
      break;
    case KeyedKind::kMediaEndpoint:
      group->AddMachine(scenarios_.media_spam, "media-spam");
      group->AddMachine(scenarios_.rtp_flood, "rtp-flood");
      group->AddMachine(scenarios_.rtcp_bye, "rtcp-bye");
      break;
    case KeyedKind::kDrdos:
      group->AddMachine(scenarios_.drdos, "drdos");
      break;
  }
  auto& entry = keyed_[name];
  entry.group = std::move(group);
  entry.last_event = scheduler_.Now();
  return *entry.group;
}

bool CallStateFactBase::IsTombstoned(const std::string& call_id) const {
  return tombstones_.contains(call_id);
}

void CallStateFactBase::IndexMedia(const net::Endpoint& endpoint,
                                   const std::string& call_id) {
  media_index_[endpoint] = call_id;
}

std::optional<std::string> CallStateFactBase::CallByMedia(
    const net::Endpoint& endpoint) const {
  const auto it = media_index_.find(endpoint);
  if (it == media_index_.end()) return std::nullopt;
  return it->second;
}

bool CallStateFactBase::CallComplete(const efsm::MachineGroup& group) const {
  const auto& machines = group.machines();
  for (const auto& machine : machines) {
    if (machine->name() == kSipMachineName && !machine->retired()) {
      return false;
    }
    if (machine->name() == kRtpMachineName && !machine->retired() &&
        machine->state() != machine->def().initial_state()) {
      return false;
    }
  }
  return true;
}

void CallStateFactBase::Sweep(sim::Time now) {
  if (now < next_sweep_) return;
  next_sweep_ = now + config_.sweep_interval;

  for (auto it = calls_.begin(); it != calls_.end();) {
    const bool complete = CallComplete(*it->second.group);
    const bool idle =
        now - it->second.last_event > config_.call_idle_timeout;
    if (complete || idle) {
      tombstones_[it->first] = now + config_.tombstone_ttl;
      ++calls_deleted_;
      // Drop this call's media-endpoint index entries.
      std::erase_if(media_index_, [&](const auto& kv) {
        return kv.second == it->first;
      });
      it = calls_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = keyed_.begin(); it != keyed_.end();) {
    if (now - it->second.last_event > config_.keyed_idle_timeout) {
      it = keyed_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(tombstones_,
                [now](const auto& kv) { return kv.second <= now; });
}

size_t CallStateFactBase::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [call_id, entry] : calls_) {
    bytes += call_id.capacity() + sizeof(Entry) + entry.group->MemoryBytes();
  }
  for (const auto& [key, entry] : keyed_) {
    bytes += key.capacity() + sizeof(Entry) + entry.group->MemoryBytes();
  }
  for (const auto& [key, expiry] : tombstones_) {
    bytes += key.capacity() + sizeof(sim::Time);
  }
  bytes += media_index_.size() *
           (sizeof(net::Endpoint) + sizeof(std::string) + 4 * sizeof(void*));
  return bytes;
}

std::optional<size_t> CallStateFactBase::CallMemoryBytes(
    const std::string& call_id) const {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return std::nullopt;
  return it->second.group->MemoryBytes();
}

}  // namespace vids::ids
