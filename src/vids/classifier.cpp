#include "vids/classifier.h"

#include <cstdio>

#include "rtp/packet.h"
#include "rtp/rtcp.h"
#include "sdp/sdp.h"
#include "sip/message.h"

namespace vids::ids {

namespace {

// Overwrites a slot with string content, reusing the existing std::string's
// capacity when the slot already holds one (the steady-state case).
void AssignStr(efsm::Value& slot, std::string_view text) {
  if (auto* str = std::get_if<std::string>(&slot)) {
    str->assign(text);
  } else {
    slot.emplace<std::string>(text);
  }
}

void AssignAbsent(efsm::Value& slot) { slot = efsm::Value{}; }

// "user@host" without the temporary UserAtHost() builds.
void AssignUserAtHost(efsm::Value& slot, const sip::UriView& uri) {
  if (auto* str = std::get_if<std::string>(&slot)) {
    str->assign(uri.user);
  } else {
    slot.emplace<std::string>(uri.user);
  }
  auto& str = std::get<std::string>(slot);
  str.push_back('@');
  str.append(uri.host);
}

// Dotted-quad into a stack buffer — cheaper than IpAddress::ToString()'s
// string temporaries (or snprintf's format-string machinery) on the
// per-packet path.
void AssignIp(efsm::Value& slot, net::IpAddress ip) {
  char buf[16];
  char* out = buf;
  const uint32_t bits = ip.bits();
  for (int shift = 24; shift >= 0; shift -= 8) {
    const uint32_t octet = (bits >> shift) & 0xFF;
    if (octet >= 100) {
      *out++ = static_cast<char>('0' + octet / 100);
      *out++ = static_cast<char>('0' + octet / 10 % 10);
    } else if (octet >= 10) {
      *out++ = static_cast<char>('0' + octet / 10);
    }
    *out++ = static_cast<char>('0' + octet % 10);
    if (shift != 0) *out++ = '.';
  }
  AssignStr(slot, std::string_view(buf, static_cast<size_t>(out - buf)));
}

// Every classifier scratch event is filled with the same keys in the same
// order on every packet, so each write names its position and EventArgs'
// Slot fast path resolves it with one integer compare in the steady state.
// The slot constants below pin that order per protocol shape.
enum SlotIndex : size_t {
  kSlotSrcIp,
  kSlotSrcPort,
  kSlotDstIp,
  kSlotDstPort,
  kSlotFromOutside,
  kSlotProtoFirst,  // first protocol-specific slot
};

void PutEndpoints(efsm::Event& event, const net::Datagram& dgram,
                  bool from_outside) {
  AssignIp(event.args.Slot(kSlotSrcIp, argkey::kSrcIp), dgram.src.ip);
  event.args.Slot(kSlotSrcPort, argkey::kSrcPort) =
      static_cast<int64_t>(dgram.src.port);
  AssignIp(event.args.Slot(kSlotDstIp, argkey::kDstIp), dgram.dst.ip);
  event.args.Slot(kSlotDstPort, argkey::kDstPort) =
      static_cast<int64_t>(dgram.dst.port);
  event.args.Slot(kSlotFromOutside, argkey::kFromOutside) = from_outside;
}

}  // namespace

const ClassifiedPacket* PacketClassifier::Classify(const net::Datagram& dgram,
                                                   bool from_outside) {
  // RTCP must be sniffed before RTP: an RTCP packet also parses as an RTP
  // header, but the RTCP packet-type range (200..204) never occurs as an
  // RTP payload type (RFC 5761 §4).
  if (rtp::LooksLikeRtcp(dgram.payload)) {
    if (const auto* rtcp = ClassifyRtcp(dgram, from_outside)) {
      ++rtcp_packets_;
      return rtcp;
    }
  }
  // Content-based dispatch: try the hinted protocol first, then the other.
  if (dgram.kind != net::PayloadKind::kRtp) {
    if (lazy_.Index(dgram.payload)) {
      ++sip_packets_;
      return ClassifySip(dgram, from_outside);
    }
    if (const auto* rtp = ClassifyRtp(dgram, from_outside)) {
      ++rtp_packets_;
      return rtp;
    }
  } else {
    if (const auto* rtp = ClassifyRtp(dgram, from_outside)) {
      ++rtp_packets_;
      return rtp;
    }
    if (lazy_.Index(dgram.payload)) {
      ++sip_packets_;
      return ClassifySip(dgram, from_outside);
    }
  }
  ++unknown_packets_;
  return nullptr;
}

const ClassifiedPacket* PacketClassifier::ClassifyRtcp(
    const net::Datagram& dgram, bool from_outside) {
  const auto packet = rtp::ParseRtcp(dgram.payload);
  if (!packet) return nullptr;
  ClassifiedPacket& out = rtcp_scratch_;
  out.proto = PacketProto::kRtcp;
  out.src = dgram.src;
  out.dst = dgram.dst;
  efsm::Event& event = out.event;
  event.name.assign(kRtcpEvent);
  PutEndpoints(event, dgram, from_outside);
  // Slot references are re-fetched at each use — first-packet appends can
  // reallocate the argument storage (see the note in ClassifySip).
  AssignAbsent(event.args.Slot(kSlotProtoFirst, argkey::kPacketCount));
  const auto kind = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 1, argkey::kKind);
  };
  const auto ssrc = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 2, argkey::kSsrc);
  };
  switch (packet->type()) {
    case rtp::RtcpType::kSenderReport:
      AssignStr(kind(), "SR");
      ssrc() = static_cast<int64_t>(packet->sr->sender_ssrc);
      event.args.Slot(kSlotProtoFirst, argkey::kPacketCount) =
          static_cast<int64_t>(packet->sr->packet_count);
      break;
    case rtp::RtcpType::kReceiverReport:
      AssignStr(kind(), "RR");
      ssrc() = static_cast<int64_t>(packet->rr->sender_ssrc);
      break;
    case rtp::RtcpType::kBye:
      AssignStr(kind(), "BYE");
      ssrc() = static_cast<int64_t>(
          packet->bye->ssrcs.empty() ? 0 : packet->bye->ssrcs.front());
      break;
  }
  return &out;
}

const ClassifiedPacket* PacketClassifier::ClassifySip(
    const net::Datagram& dgram, bool from_outside) {
  // lazy_ has already indexed the payload; decode only what the predicates
  // read, straight from the memoized views, into the reused scratch packet.
  ClassifiedPacket& out = sip_scratch_;
  out.proto = PacketProto::kSip;
  out.src = dgram.src;
  out.dst = dgram.dst;
  out.call_key.clear();
  out.dest_key.clear();
  efsm::Event& event = out.event;
  event.name.assign(kSipEvent);
  PutEndpoints(event, dgram, from_outside);

  AssignStr(event.args.Slot(kSlotProtoFirst, argkey::kKind),
            lazy_.IsRequest() ? "request" : "response");
  AssignStr(event.args.Slot(kSlotProtoFirst + 1, argkey::kMethod),
            sip::MethodName(lazy_.method()));
  event.args.Slot(kSlotProtoFirst + 2, argkey::kStatus) =
      static_cast<int64_t>(lazy_.status());
  efsm::Value& call_id_slot =
      event.args.Slot(kSlotProtoFirst + 3, argkey::kCallId);
  if (const auto call_id = lazy_.CallId()) {
    out.call_key.assign(*call_id);
    AssignStr(call_id_slot, *call_id);
  } else {
    AssignAbsent(call_id_slot);
  }
  efsm::Value& cseq_slot = event.args.Slot(kSlotProtoFirst + 4, argkey::kCseq);
  if (const auto* cseq = lazy_.Cseq()) {
    cseq_slot = static_cast<int64_t>(cseq->number);
  } else {
    AssignAbsent(cseq_slot);
  }
  // NB: a slot reference is used immediately and never held across another
  // Slot call — the first packet appends entries, which can reallocate the
  // argument storage and invalidate earlier references.
  const sip::NameAddrView* from = lazy_.From();
  const auto from_slot = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 5, argkey::kFrom);
  };
  const auto from_tag_slot = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 6, argkey::kFromTag);
  };
  if (from != nullptr) {
    AssignUserAtHost(from_slot(), from->uri);
    if (const auto tag = from->Tag()) {
      AssignStr(from_tag_slot(), *tag);
    } else {
      AssignAbsent(from_tag_slot());
    }
  } else {
    AssignAbsent(from_slot());
    AssignAbsent(from_tag_slot());
  }
  const sip::NameAddrView* to = lazy_.To();
  const auto to_slot = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 7, argkey::kTo);
  };
  const auto to_tag_slot = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 8, argkey::kToTag);
  };
  if (to != nullptr) {
    AssignUserAtHost(to_slot(), to->uri);
    if (const auto tag = to->Tag()) {
      AssignStr(to_tag_slot(), *tag);
    } else {
      AssignAbsent(to_tag_slot());
    }
  } else {
    AssignAbsent(to_slot());
    AssignAbsent(to_tag_slot());
  }
  efsm::Value& branch_slot =
      event.args.Slot(kSlotProtoFirst + 9, argkey::kBranch);
  if (const auto* via = lazy_.TopVia()) {
    AssignStr(branch_slot, via->branch);
  } else {
    AssignAbsent(branch_slot);
  }
  if (lazy_.IsRequest() && to != nullptr) {
    out.dest_key.assign(to->uri.user);
    out.dest_key.push_back('@');
    out.dest_key.append(to->uri.host);
  }

  // SDP media parameters — the values the SIP machine exports to the RTP
  // machine through global variables.
  const auto sdp_ip_slot = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 10, argkey::kSdpIp);
  };
  const auto sdp_port_slot = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 11, argkey::kSdpPort);
  };
  const auto sdp_codec_slot = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 12, argkey::kSdpCodec);
  };
  const auto sdp_pt_slot = [&event]() -> efsm::Value& {
    return event.args.Slot(kSlotProtoFirst + 13, argkey::kSdpPt);
  };
  bool has_media = false;
  if (!lazy_.body().empty()) {
    if (const auto probe = sdp::ProbeAudio(lazy_.body());
        probe && probe->has_endpoint) {
      has_media = true;
      AssignIp(sdp_ip_slot(), probe->endpoint.ip);
      sdp_port_slot() = static_cast<int64_t>(probe->endpoint.port);
      AssignStr(sdp_codec_slot(), probe->codec);
      if (probe->has_first_pt) {
        sdp_pt_slot() = static_cast<int64_t>(probe->first_pt);
      } else {
        AssignAbsent(sdp_pt_slot());
      }
    }
  }
  if (!has_media) {
    AssignAbsent(sdp_ip_slot());
    AssignAbsent(sdp_port_slot());
    AssignAbsent(sdp_codec_slot());
    AssignAbsent(sdp_pt_slot());
  }
  // User-Agent — the behavior layer's endpoint-identity diversity signal
  // (DESIGN.md §16). Last slot so the pinned positional order above is
  // untouched.
  efsm::Value& ua_slot =
      event.args.Slot(kSlotProtoFirst + 14, argkey::kUserAgent);
  if (const auto ua = lazy_.Header(sip::HeaderId::kUserAgent)) {
    AssignStr(ua_slot, *ua);
  } else {
    AssignAbsent(ua_slot);
  }
  return &out;
}

const ClassifiedPacket* PacketClassifier::ClassifyRtp(
    const net::Datagram& dgram, bool from_outside) {
  const auto header = rtp::RtpHeader::Parse(dgram.payload);
  if (!header) return nullptr;
  ClassifiedPacket& out = rtp_scratch_;
  out.proto = PacketProto::kRtp;
  out.src = dgram.src;
  out.dst = dgram.dst;
  efsm::Event& event = out.event;
  event.name.assign(kRtpEvent);
  PutEndpoints(event, dgram, from_outside);
  event.args[argkey::kSsrc] = static_cast<int64_t>(header->ssrc);
  event.args[argkey::kSeq] = static_cast<int64_t>(header->sequence_number);
  event.args[argkey::kTs] = static_cast<int64_t>(header->timestamp);
  event.args[argkey::kPt] = static_cast<int64_t>(header->payload_type);
  event.args[argkey::kMarker] = header->marker;
  return &out;
}

}  // namespace vids::ids
