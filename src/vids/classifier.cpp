#include "vids/classifier.h"

#include "rtp/packet.h"
#include "rtp/rtcp.h"
#include "sdp/sdp.h"

namespace vids::ids {

namespace {

void PutEndpoints(efsm::Event& event, const net::Datagram& dgram,
                  bool from_outside) {
  event.args[argkey::kSrcIp] = dgram.src.ip.ToString();
  event.args[argkey::kSrcPort] = static_cast<int64_t>(dgram.src.port);
  event.args[argkey::kDstIp] = dgram.dst.ip.ToString();
  event.args[argkey::kDstPort] = static_cast<int64_t>(dgram.dst.port);
  event.args[argkey::kFromOutside] = from_outside;
}

}  // namespace

std::optional<ClassifiedPacket> PacketClassifier::Classify(
    const net::Datagram& dgram, bool from_outside) {
  // RTCP must be sniffed before RTP: an RTCP packet also parses as an RTP
  // header, but the RTCP packet-type range (200..204) never occurs as an
  // RTP payload type (RFC 5761 §4).
  if (rtp::LooksLikeRtcp(dgram.payload)) {
    if (auto rtcp = ClassifyRtcp(dgram, from_outside)) {
      ++rtcp_packets_;
      return rtcp;
    }
  }
  // Content-based dispatch: try the hinted protocol first, then the other.
  if (dgram.kind != net::PayloadKind::kRtp) {
    if (auto message = sip::Message::Parse(dgram.payload)) {
      ++sip_packets_;
      return ClassifySip(*message, dgram, from_outside);
    }
    if (auto rtp = ClassifyRtp(dgram, from_outside)) {
      ++rtp_packets_;
      return rtp;
    }
  } else {
    if (auto rtp = ClassifyRtp(dgram, from_outside)) {
      ++rtp_packets_;
      return rtp;
    }
    if (auto message = sip::Message::Parse(dgram.payload)) {
      ++sip_packets_;
      return ClassifySip(*message, dgram, from_outside);
    }
  }
  ++unknown_packets_;
  return std::nullopt;
}

std::optional<ClassifiedPacket> PacketClassifier::ClassifyRtcp(
    const net::Datagram& dgram, bool from_outside) {
  const auto packet = rtp::ParseRtcp(dgram.payload);
  if (!packet) return std::nullopt;
  ClassifiedPacket out;
  out.proto = PacketProto::kRtcp;
  out.src = dgram.src;
  out.dst = dgram.dst;
  efsm::Event& event = out.event;
  event.name = std::string(kRtcpEvent);
  PutEndpoints(event, dgram, from_outside);
  switch (packet->type()) {
    case rtp::RtcpType::kSenderReport:
      event.args[argkey::kKind] = std::string("SR");
      event.args[argkey::kSsrc] =
          static_cast<int64_t>(packet->sr->sender_ssrc);
      event.args[argkey::kPacketCount] =
          static_cast<int64_t>(packet->sr->packet_count);
      break;
    case rtp::RtcpType::kReceiverReport:
      event.args[argkey::kKind] = std::string("RR");
      event.args[argkey::kSsrc] =
          static_cast<int64_t>(packet->rr->sender_ssrc);
      break;
    case rtp::RtcpType::kBye:
      event.args[argkey::kKind] = std::string("BYE");
      event.args[argkey::kSsrc] = static_cast<int64_t>(
          packet->bye->ssrcs.empty() ? 0 : packet->bye->ssrcs.front());
      break;
  }
  return out;
}

ClassifiedPacket PacketClassifier::ClassifySip(const sip::Message& message,
                                               const net::Datagram& dgram,
                                               bool from_outside) {
  ClassifiedPacket out;
  out.proto = PacketProto::kSip;
  out.src = dgram.src;
  out.dst = dgram.dst;
  efsm::Event& event = out.event;
  event.name = std::string(kSipEvent);
  PutEndpoints(event, dgram, from_outside);

  event.args[argkey::kKind] = message.IsRequest() ? std::string("request")
                                                  : std::string("response");
  event.args[argkey::kMethod] =
      std::string(sip::MethodName(message.method()));
  event.args[argkey::kStatus] = static_cast<int64_t>(message.status());
  if (const auto call_id = message.CallId()) {
    out.call_key = std::string(*call_id);
    event.args[argkey::kCallId] = out.call_key;
  }
  if (const auto cseq = message.Cseq()) {
    event.args[argkey::kCseq] = static_cast<int64_t>(cseq->number);
  }
  if (const auto from = message.From()) {
    event.args[argkey::kFrom] = from->uri.UserAtHost();
    if (const auto tag = from->Tag()) event.args[argkey::kFromTag] = *tag;
  }
  if (const auto to = message.To()) {
    event.args[argkey::kTo] = to->uri.UserAtHost();
    if (const auto tag = to->Tag()) event.args[argkey::kToTag] = *tag;
  }
  if (const auto via = message.TopVia()) {
    event.args[argkey::kBranch] = via->branch;
  }
  if (message.IsRequest()) {
    if (const auto to = message.To()) out.dest_key = to->uri.UserAtHost();
  }

  // SDP media parameters — the values the SIP machine exports to the RTP
  // machine through global variables.
  if (!message.body().empty()) {
    if (const auto sd = sdp::SessionDescription::Parse(message.body())) {
      if (const auto media = sd->AudioEndpoint()) {
        event.args[argkey::kSdpIp] = media->ip.ToString();
        event.args[argkey::kSdpPort] = static_cast<int64_t>(media->port);
        event.args[argkey::kSdpCodec] = sd->AudioCodec();
        if (!sd->media.empty() && !sd->media.front().payload_types.empty()) {
          event.args[argkey::kSdpPt] =
              static_cast<int64_t>(sd->media.front().payload_types.front());
        }
      }
    }
  }
  return out;
}

std::optional<ClassifiedPacket> PacketClassifier::ClassifyRtp(
    const net::Datagram& dgram, bool from_outside) {
  const auto header = rtp::RtpHeader::Parse(dgram.payload);
  if (!header) return std::nullopt;
  ClassifiedPacket out;
  out.proto = PacketProto::kRtp;
  out.src = dgram.src;
  out.dst = dgram.dst;
  efsm::Event& event = out.event;
  event.name = std::string(kRtpEvent);
  PutEndpoints(event, dgram, from_outside);
  event.args[argkey::kSsrc] = static_cast<int64_t>(header->ssrc);
  event.args[argkey::kSeq] = static_cast<int64_t>(header->sequence_number);
  event.args[argkey::kTs] = static_cast<int64_t>(header->timestamp);
  event.args[argkey::kPt] = static_cast<int64_t>(header->payload_type);
  event.args[argkey::kMarker] = header->marker;
  return out;
}

}  // namespace vids::ids
