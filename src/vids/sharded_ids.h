// Sharded multi-worker vIDS engine.
//
// The paper's vIDS keeps its state strictly per call (one EFSM group per
// Call-ID) and per key (media endpoint, destination AOR, victim host) —
// there is no cross-call coupling in the fact base itself. That makes the
// engine horizontally partitionable: ShardedIds runs N complete, private
// `Vids` instances ("shards"), one worker thread each, and a router on the
// ingest thread that hash-partitions traffic so every piece of keyed state
// is only ever touched by one thread:
//
//   SIP            → FNV-1a(Call-ID) mod N. All packets of a dialog land on
//                    one shard, so call groups, tombstones and the per-call
//                    patterns behave exactly as in the single engine.
//   RTP            → media-endpoint owner map (maintained by an SDP snoop
//                    on the routed SIP traffic: the endpoint belongs to the
//                    shard of the call that negotiated it), falling back to
//                    a hash of the destination endpoint for unnegotiated
//                    media. Either way one endpoint → one shard, so the
//                    per-endpoint pattern groups (RTP flood, media spam,
//                    RTCP BYE) count a coherent stream.
//   RTCP           → folded onto its media endpoint (port − 1) and routed
//                    like RTP, so the ghost-media machine sees both halves.
//   anything else  → hash of the destination endpoint.
//
// Packets travel on fixed-capacity SPSC rings (common/spsc_ring.h), one
// down-ring per shard; a full ring is backpressure (the producer drains the
// upstream rings while it waits), never an allocation or a drop. Ring slots
// are reused in place, so the PR-4 zero-allocation inspect path extends
// through the handoff: steady-state ingest copies payload bytes into a
// warm slot string and the worker swaps them out, allocation-free.
//
// The two detectors whose counting key spans calls — INVITE flooding (per
// destination AOR) and DRDoS reflection (per victim host) — cannot live in
// any one shard, because their events originate on whichever shard the
// carrying dialog hashed to. Shards therefore do not feed those window
// counters locally (Vids::set_aggregate_hook); they forward each would-be
// event up an SPSC ring, and the coordinator replays the merged,
// time-ordered event stream into its own window counters with the exact
// BuildWindowCounter semantics. The replay is gated on the *frontier* (the
// minimum packet time any shard has fully processed, published with
// release/acquire ordering), so events are replayed in global time order
// even though shards drain at different speeds. The alert multiset is
// therefore identical for every shard count — sharded_ids_test pins
// shards=1 vs shards=4 vs the plain single-threaded Vids.
//
// Thread-ownership invariants (see DESIGN.md §11):
//   - each shard's Scheduler + Vids are touched only by its worker thread;
//   - the rings are strict SPSC (ingest thread ↔ one worker);
//   - the coordinator reads shard state (metrics, fact base) only after a
//     Flush() barrier, which round-trips a token through both rings and so
//     carries a happens-before edge over everything the worker did;
//   - alerts, aggregate events and acks flow only upstream.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/spsc_ring.h"
#include "common/strings.h"
#include "net/datagram.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "sip/lazy_message.h"
#include "vids/alert.h"
#include "vids/config.h"
#include "vids/ids.h"

namespace vids::ids {

struct ShardedConfig {
  /// Number of worker shards (>= 1). 1 reproduces the single-engine
  /// behavior with the pipeline in place.
  int shards = 1;
  /// Per-ring slot count (rounded up to a power of two). A full ring
  /// backpressures the producer; it never drops or allocates.
  size_t ring_capacity = 1024;
  DetectionConfig detection{};
  CostModel cost{};
  /// Cap on the coordinator's merged alert history (0 = unlimited); same
  /// drop-oldest-half policy as Vids::set_max_retained_alerts.
  size_t max_retained_alerts = 0;
};

class ShardedIds {
 public:
  explicit ShardedIds(ShardedConfig config);
  ~ShardedIds();
  ShardedIds(const ShardedIds&) = delete;
  ShardedIds& operator=(const ShardedIds&) = delete;

  /// Routes one packet to its shard. `when` is the packet's (simulated)
  /// arrival time and must be non-decreasing across calls. Blocks only when
  /// the target ring is full (backpressure), draining upstream traffic
  /// while it waits. Call from one thread only.
  void Ingest(const net::Datagram& dgram, bool from_outside, sim::Time when);

  /// Drains upstream rings: collects shard alerts, advances the aggregate
  /// replay to the current frontier. Cheap when nothing is pending; called
  /// opportunistically by Ingest, periodically by drivers.
  void Pump();

  /// Quiescence barrier: every packet ingested so far is fully processed,
  /// every shard's detection timers have advanced to `now`, all aggregate
  /// events up to `now` are replayed, and shard state (metrics(),
  /// fact_base()) may be read from the calling thread until the next
  /// Ingest. Also prunes the router's idle media-owner entries.
  void Flush(sim::Time now);

  /// Stops and joins the workers, then drains everything still in flight.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Merged alert stream: shard alerts in arrival order interleaved with
  /// coordinator (aggregate) alerts in replay order. Sort by `when` for a
  /// deterministic view.
  const std::vector<Alert>& alerts() const { return alerts_; }
  size_t CountAlerts(AlertKind kind) const;
  size_t CountAlerts(std::string_view classification) const;
  void set_alert_callback(std::function<void(const Alert&)> cb) {
    alert_callback_ = std::move(cb);
  }

  int shards() const { return static_cast<int>(shards_.size()); }

  /// Shard access for post-Flush inspection (tests, the soak sampler).
  Vids& shard_vids(int i) { return *shards_[static_cast<size_t>(i)]->vids; }
  const Vids& shard_vids(int i) const {
    return *shards_[static_cast<size_t>(i)]->vids;
  }

  /// Fresh registry holding every shard's metrics folded together plus the
  /// coordinator's own "sharded.*" counters. Post-Flush only.
  obs::MetricsRegistry MergedMetrics() const;

  /// Total tracked state across shards (calls + keyed groups + tombstones +
  /// media index) plus the coordinator's router/replay maps. Post-Flush.
  size_t TrackedState() const;
  /// Total state footprint in bytes (fact bases + coordinator maps).
  /// Post-Flush.
  size_t MemoryBytes() const;

  /// Times the producer found a down-ring full and had to wait.
  uint64_t ingest_stalls() const { return m_ingest_stalls_->value(); }
  /// Media-ownership transfers routed between shards so far.
  uint64_t ownership_transfers() const { return m_retracts_->value(); }
  /// First-SDP-claim retractions sent to an endpoint's hash-fallback shard
  /// (early media arrived before its negotiation; see SnoopSdp).
  uint64_t early_media_retracts() const { return m_early_retracts_->value(); }

 private:
  // ---- messages ----
  struct ShardMsg {
    enum class Kind : uint8_t { kPacket, kRetractMedia, kFlush, kStop };
    Kind kind = Kind::kPacket;
    int64_t when_ns = 0;
    bool from_outside = false;
    net::Datagram dgram;     // kPacket (payload string reused in place)
    net::Endpoint endpoint;  // kRetractMedia
    uint64_t token = 0;      // kFlush
  };
  struct UpMsg {
    enum class Kind : uint8_t { kAlert, kAgg, kFlushAck };
    Kind kind = Kind::kAlert;
    int64_t when_ns = 0;
    Alert alert;                 // kAlert (strings reused in place)
    Vids::AggregateKind agg{};   // kAgg
    std::string key;             // kAgg: dest AOR (INVITE) / victim IP (DRDoS)
    std::string src_ip;          // kAgg: for the alert detail
    std::string dst_ip;
    uint64_t token = 0;          // kFlushAck
  };

  struct Shard {
    common::SpscRing<ShardMsg> down;
    common::SpscRing<UpMsg> up;
    std::unique_ptr<sim::Scheduler> scheduler;
    std::unique_ptr<Vids> vids;
    std::thread thread;
    /// Highest packet/flush time this worker has fully processed. Written
    /// (release) after the worker pushed every upstream message for that
    /// time, so an acquire read covers them.
    std::atomic<int64_t> processed_ns{0};
    /// Times this worker found its up-ring full (worker-owned plain slot;
    /// the coordinator folds it into MergedMetrics post-Flush).
    uint64_t up_stalls = 0;
    /// Set (release) by the worker after it popped kStop, just before it
    /// returns. Stop() keeps draining the up-rings until every worker has
    /// raised this — a worker with down-ring backlog can be blocked in
    /// PushUp on a full up-ring, and joining it without draining would
    /// deadlock.
    std::atomic<bool> done{false};

    explicit Shard(size_t ring_capacity)
        : down(ring_capacity), up(ring_capacity) {}
  };

  /// One forwarded aggregate-feed event, queued until the frontier passes.
  struct AggEvent {
    int64_t when_ns = 0;
    Vids::AggregateKind kind{};
    std::string key;
    std::string src_ip;
    std::string dst_ip;
  };

  /// Coordinator-side replay of patterns.cpp's BuildWindowCounter (plus the
  /// Vids-level alert dedup): armed window, event count, lazy timer expiry.
  struct WinState {
    bool armed = false;
    int64_t count = 0;
    int64_t deadline_ns = 0;
    int64_t last_alert_ns = 0;
    bool alerted_once = false;
    int64_t last_event_ns = 0;
  };

  struct OwnerEntry {
    int shard = 0;
    int64_t last_seen_ns = 0;
  };

  // ---- worker side ----
  void WorkerLoop(Shard& shard);
  // Fill-callbacks are template parameters (not std::function) so the
  // per-packet push never allocates a callable. Defined in the .cpp — only
  // that TU instantiates them.
  template <typename Fill>
  void PushUp(Shard& shard, Fill&& fill);

  // ---- router (ingest thread) ----
  int RouteEndpoint(const net::Endpoint& endpoint, int64_t when_ns);
  int ShardOfCallId(std::string_view call_id) const;
  void SnoopSdp(std::string_view body, int shard, int64_t when_ns);
  template <typename Fill>
  void PushDown(int shard, Fill&& fill);

  // ---- coordinator (ingest thread) ----
  void DrainUp();
  /// Replays pending aggregate events with when_ns <= `frontier` in global
  /// time order. The frontier must have been snapshotted (min processed_ns,
  /// acquire) BEFORE the drain that filled pending_; INT64_MAX replays
  /// everything (only valid once the rings are final).
  void ReplayAggregates(int64_t frontier);
  void ReplayOne(const AggEvent& event);
  void EmitAlert(Alert alert);
  void PruneCoordinator(int64_t now_ns);

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool workers_joined_ = false;
  int64_t last_ingest_ns_ = 0;
  uint64_t ingest_count_ = 0;
  uint64_t flush_token_ = 0;
  size_t flush_acks_ = 0;

  sip::LazyMessage router_lazy_;
  /// media endpoint (PackedKey) → owning shard. Entries refresh on every
  /// RTP hit and are pruned once idle past the shard-side state horizon.
  std::unordered_map<uint64_t, OwnerEntry> media_owner_;

  template <typename T>
  using StringKeyed =
      std::unordered_map<std::string, T, common::StringHash, std::equal_to<>>;
  StringKeyed<WinState> invite_windows_;  // key = destination AOR
  StringKeyed<WinState> drdos_windows_;   // key = victim IP (dotted)
  std::vector<std::deque<AggEvent>> pending_;  // per-shard, time-ordered

  std::vector<Alert> alerts_;
  std::function<void(const Alert&)> alert_callback_;

  obs::MetricsRegistry coord_metrics_;
  obs::Counter* m_ingest_stalls_;
  obs::Counter* m_retracts_;
  obs::Counter* m_early_retracts_;
  obs::Counter* m_agg_events_;
  obs::Counter* m_coord_alerts_;
  obs::Counter* m_coord_suppressed_;
  obs::Counter* m_sip_routed_;
  obs::Counter* m_rtp_owner_routed_;
  obs::Counter* m_rtp_hash_routed_;
  obs::Counter* m_flushes_;
};

}  // namespace vids::ids
