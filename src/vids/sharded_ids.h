// Sharded multi-worker vIDS engine with multi-producer ingest.
//
// The paper's vIDS keeps its state strictly per call (one EFSM group per
// Call-ID) and per key (media endpoint, destination AOR, victim host) —
// there is no cross-call coupling in the fact base itself. That makes the
// engine horizontally partitionable: ShardedIds runs N complete, private
// `Vids` instances ("shards"), one worker thread each, fed by P ingest
// ports ("producers" — capture queues, RSS flows, replay fan-out threads),
// each of which routes its own packets so every piece of keyed state is
// only ever touched by one thread:
//
//   SIP            → FNV-1a(Call-ID) mod N. All packets of a dialog land on
//                    one shard, so call groups, tombstones and the per-call
//                    patterns behave exactly as in the single engine.
//   RTP            → media-endpoint ownership view (MediaOwnerTable — a
//                    lock-free-reader claim-history table maintained by an
//                    SDP snoop on the routed SIP traffic: the endpoint
//                    belongs to the shard of the call that negotiated it),
//                    falling back to a hash of the destination endpoint for
//                    unnegotiated media. Either way one endpoint → one
//                    shard, so the per-endpoint pattern groups (RTP flood,
//                    media spam, RTCP BYE) count a coherent stream.
//   RTCP           → folded onto its media endpoint (port − 1) and routed
//                    like RTP, so the ghost-media machine sees both halves.
//   anything else  → hash of the destination endpoint.
//
// MPSC topology (DESIGN.md §15). Each shard owns P ingest LANES — strict
// SPSC rings (common/spsc_ring.h), one per (producer, shard) pair, each
// paired 1:1 with a PayloadArena slab so steady-state ingest memcpys
// payload bytes into a contiguous per-lane arena instead of scattered
// slot strings — plus one coordinator-only CONTROL lane (flush/stop
// barriers, hot-key broadcasts, test wedges) and the up-ring. The worker
// k-way merges its ingest lanes by (when_ns, seq): `seq` is a global
// arrival number the dispatcher stamps, so the merged per-shard order is
// EXACTLY the order a single producer would have delivered, and the alert
// stream is byte-identical for every producer count.
//
// Two protocols make producer-side routing exact (DESIGN.md §15):
//
//  - Ingest frontiers. Every port publishes a frontier F = "every message
//    this port will ever commit from now on has when_ns > F". The worker
//    may take the minimal front of its nonempty lanes only when its time
//    is <= every EMPTY lane's frontier (an empty lane whose frontier has
//    not passed the candidate may still publish an earlier message); a
//    blocked worker records which lane it waits on, which is what lets
//    the watchdog tell a wedged PRODUCER from a wedged worker.
//  - Claim-ordered ingest contract. Ownership claims (SDP snoops) land in
//    the shared MediaOwnerTable during the claiming packet's Ingest call,
//    keyed by the packet's global arrival number. The DRIVER must ingest
//    every claim-carrying packet (see CarriesClaims) before handing any
//    later-sequenced packet to another producer — capture::RunSource does
//    this by routing the rare SIP packets through the dispatcher's own
//    port inline. Under that contract, when any port routes arrival #seq,
//    every claim sequenced before it is already in the table; claims
//    sequenced AFTER it may be there too, so the table answers ownership
//    AS OF seq (two-deep, seqlock-consistent claim history). Routing is
//    therefore a pure function of (endpoint, seq) — stale routing
//    snapshots cannot happen, producers never spin on each other, and the
//    losing shard of a renegotiation is retracted exactly once by
//    whichever port applied the claim (the kRetractMedia message rides
//    that port's own lane at the claim's (when, seq), so the merge orders
//    it exactly). Packets predating both recorded claim eras hash-route
//    and count a route escalation (the bounded slow path).
//
// Single-producer configurations (producers == 1, the default) degenerate
// to the PR 5–8 behavior: one lane per shard, the contract holds trivially
// (one thread ingests everything in order), and ShardedIds::Ingest remains
// the drop-in single-threaded API (port 0 + opportunistic upstream drain).
//
// The two detectors whose counting key spans calls — INVITE flooding (per
// destination AOR) and DRDoS reflection (per victim host) — cannot live in
// any one shard. Shards buffer their would-be events in a local,
// time-ordered staging buffer with per-key escalation sketches; the
// coordinator replays the merged, time-ordered event stream into its own
// window counters gated on the aggregate-complete frontier. See
// DESIGN.md §12 for the exactness argument.
//
// Thread-ownership invariants (DESIGN.md §11, §15):
//   - each shard's Scheduler + Vids are touched only by its worker thread;
//   - every ring is strict SPSC: ingest lane p ↔ port p's thread, control
//     lane + up-ring ↔ the coordinator thread;
//   - exactly one thread at a time may drive the coordinator surface
//     (Pump/Flush/Stop/MergedMetrics); ports never drain upstream;
//   - Flush()/Stop() require quiescent ports: the caller must have
//     synchronized with every producer thread (join or equivalent edge)
//     so the coordinator may commit their open batches and advance their
//     frontiers; post-Flush ingest must carry times strictly after the
//     flush instant;
//   - alerts, aggregate events and acks flow only upstream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/backoff.h"
#include "common/payload_arena.h"
#include "common/spsc_ring.h"
#include "common/strings.h"
#include "net/datagram.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "sip/lazy_message.h"
#include "vids/alert.h"
#include "vids/config.h"
#include "vids/ids.h"
#include "vids/media_owner_table.h"

namespace vids::ids {

struct ShardedConfig {
  /// Number of worker shards (>= 1, <= 255 — the ownership table packs the
  /// shard index into 8 bits). 1 reproduces the single-engine behavior
  /// with the pipeline in place.
  int shards = 1;
  /// Number of ingest ports (producer threads that may feed the engine
  /// concurrently, >= 1). Each port owns one SPSC lane per shard plus its
  /// own routing parser and metrics; 1 keeps the legacy single-router
  /// data path (no claim gating, no merge overhead beyond one lane).
  int producers = 1;
  /// Per-ring slot count (rounded up to a power of two). A full ring
  /// backpressures the producer; it never drops or allocates.
  size_t ring_capacity = 1024;
  /// Per-slot byte budget of each ingest lane's payload arena (the slab is
  /// ring_capacity * this). Payloads that fit are memcpy'd into the
  /// contiguous slab; larger ones fall back to the ring slot's own string.
  /// 0 disables the arenas (every payload takes the slot-string path).
  size_t arena_slot_bytes = 2048;
  DetectionConfig detection{};
  CostModel cost{};
  /// Cap on the coordinator's merged alert history (0 = unlimited); same
  /// drop-oldest-half policy as Vids::set_max_retained_alerts.
  size_t max_retained_alerts = 0;

  // --- batching (DESIGN.md §12) ---
  /// Max ring slots published/consumed per release/acquire pair. 1
  /// reproduces the PR-5 slot-at-a-time handoff exactly; larger values
  /// amortize the index fences and the consumer wakeups over the batch.
  size_t batch_max = 32;
  /// Bound on how long a partial producer batch may stay unpublished while
  /// the port keeps calling Ingest()/Heartbeat() — enforced in BOTH clock
  /// domains: wall clock, and the source timestamps carried by Ingest(),
  /// so a faster-than-real-time replay (pcap/trace) cannot hold packets
  /// unpublished across a capture gap that spans almost no wall time.
  /// Flush() and Stop() always publish immediately.
  int64_t batch_flush_us = 50;
  /// Busy-wait shape for the worker loops: yields before the first sleep,
  /// then the idle sleep. See common/backoff.h for the defaults.
  int idle_spins = common::kSpinsBeforeSleep;
  int64_t idle_sleep_us = common::kIdleSleepMicros;

  // --- coordinator-free aggregate path (DESIGN.md §12) ---
  /// How long (simulated time) a shard may hold a cold aggregate event
  /// locally before shipping it upstream. Larger values batch harder and
  /// delay cold-key replay by at most this much; alerts carry event
  /// timestamps, so the alert multiset is unaffected. 0 ships every event
  /// at the end of the batch that produced it (PR-5 behavior, batched).
  sim::Duration agg_hold = sim::Duration::Millis(250);
  /// Fraction of the per-shard escalation share at which a key turns hot.
  /// The share is ceil((threshold + 1) / shards): by pigeonhole at least
  /// one shard reaches it inside any globally over-threshold window, so
  /// values <= 1.0 preserve exact alerts (lower escalates earlier and
  /// ships more events eagerly; values above 1.0 are clamped to 1.0).
  double agg_escalation_fraction = 1.0;

  // --- pipeline observability (DESIGN.md §13) ---
  /// Sample one in this many ingested packets (per port) for a pipeline
  /// span: the port stamps the enqueue wall time, the worker records
  /// ingest→dequeue / inspect / end-to-end (and, if the packet alerted,
  /// ingest→alert) into its shard-local latency histograms plus a kSpan
  /// flight record. Rounded up to a power of two. 0 disables tracing: the
  /// ingest path then carries a single always-false branch — no clock
  /// read, no counter tick — and the worker's span branch never takes.
  uint32_t trace_sample_period = 1024;
  /// Watchdog deadline (wall clock): a shard whose lanes stay non-empty
  /// while its worker's heartbeat does not advance for this long raises
  /// one structured EngineHealth alert per stall episode — attributed to
  /// the producer lane the worker is merge-blocked on when there is one
  /// (a wedged producer is not a wedged worker), to the worker otherwise.
  /// 0 disables the watchdog (and the worker's per-batch heartbeat clock
  /// read).
  int64_t watchdog_stall_ms = 2000;
};

class ShardedIds {
 public:
  /// One producer's handle into the engine. Each port is single-threaded
  /// (exactly one thread may use a given port at a time) and owns the
  /// producer side of its per-shard lanes, its own SIP routing parser,
  /// span sampling state and ingest metrics. Ports are created with the
  /// engine (config.producers of them) and live until Stop().
  class IngestPort {
   public:
    /// Routes one packet to its shard. `when` must be non-decreasing
    /// across this port's calls. `seq` is the packet's global arrival
    /// number: across ports, (when, seq) must be consistent with one
    /// global arrival order (a dispatcher that assigns seq in pull order
    /// satisfies this trivially), and claim-carrying packets must obey the
    /// claim-ordered ingest contract (file header). Blocks when the target
    /// lane is full (backpressure).
    void Ingest(const net::Datagram& dgram, bool from_outside, sim::Time when,
                uint64_t seq);
    /// Same, with a port-local auto-assigned seq (single-producer use, or
    /// callers that do not need cross-port determinism).
    void Ingest(const net::Datagram& dgram, bool from_outside, sim::Time when);
    /// Publishes "this port will ingest nothing earlier than `when`":
    /// commits any deadline-expired open batches and advances the ingest
    /// frontier so an idle port does not stall the workers' merges.
    void Heartbeat(sim::Time when);
    /// Terminal: commits everything and raises the frontier to +inf. The
    /// port must not ingest afterwards.
    void Close();
    int index() const { return index_; }

    /// Declares that this port is driven by the SAME thread that owns the
    /// coordinator surface (Pump/Flush/Stop): its backpressure wait then
    /// drains the up-rings itself instead of spin-sleeping until that
    /// thread gets around to pumping — required to stay deadlock-free when
    /// the coordinator thread ingests inline (a worker blocked publishing
    /// alerts upstream can hold a lane full forever otherwise). At most
    /// one port may have this set. Port 0 of a single-producer engine has
    /// it by default (the PR 5 behavior).
    void set_inline_drain(bool on) { inline_drain_ = on; }

    /// Times this port found a lane full and had to wait (its share of the
    /// engine-wide ingest_stalls()).
    uint64_t stalls() const { return m_stalls_->value(); }

   private:
    friend class ShardedIds;
    IngestPort(ShardedIds& engine, int index);
    IngestPort(const IngestPort&) = delete;
    IngestPort& operator=(const IngestPort&) = delete;

    ShardedIds& engine_;
    const int index_;
    sip::LazyMessage lazy_;
    uint64_t auto_seq_ = 0;
    uint32_t trace_tick_ = 0;
    /// Port 0 in single-producer mode doubles as the coordinator thread:
    /// its backpressure wait drains upstream (the PR 5 behavior). Ports of
    /// a multi-producer engine must not touch the coordinator surface, so
    /// they spin-sleep instead and rely on the driver pumping.
    bool inline_drain_ = false;
    bool closed_ = false;
    /// Highest ingest time seen (port thread); mirrored into last_when_pub_
    /// (relaxed) for the coordinator's quiescent reads.
    int64_t last_when_ns_ = 0;
    /// Earliest first-message time over this port's OPEN (uncommitted) lane
    /// batches; INT64_MAX when every batch is committed. Caps the frontier:
    /// an open batch is invisible to the worker, so the frontier may not
    /// pass it.
    int64_t open_min_ns_ = INT64_MAX;
    std::vector<int64_t> lane_open_ns_;  // per shard; INT64_MAX = no open batch
    /// Producer-batch deadline bookkeeping (both clock domains, as before).
    bool deadline_armed_ = false;
    std::chrono::steady_clock::time_point deadline_since_{};
    int64_t deadline_src_ns_ = 0;
    /// Published frontier: every message this port will still commit has
    /// when_ns strictly greater. Written release by the port (and by the
    /// coordinator inside Flush()/Stop(), under the quiescence contract);
    /// read acquire by workers (merge gate).
    std::atomic<int64_t> frontier_{-1};
    std::atomic<int64_t> last_when_pub_{0};
    /// Per-lane depth high-water marks / backpressure stalls (producer side
    /// of each lane; merged under "shard.N.lane.M." post-Flush).
    std::vector<uint64_t> lane_hwm_;
    std::vector<uint64_t> lane_stalls_;
    /// Port-private metrics (single-writer: this port's thread). Uses the
    /// same metric names as the coordinator's routing counters, so the
    /// post-Flush merge folds every port into the familiar series.
    obs::MetricsRegistry metrics_;
    obs::Counter* m_stalls_;
    obs::Counter* m_sip_routed_;
    obs::Counter* m_owner_routed_;
    obs::Counter* m_hash_routed_;
    obs::Counter* m_early_retracts_;
    obs::Counter* m_retracts_;
    obs::Counter* m_route_escalations_;
    obs::Counter* m_stale_claims_;
    obs::Counter* m_flush_full_;
    obs::Counter* m_flush_deadline_;
    obs::Counter* m_flush_barrier_;
    obs::Histogram* m_batch_committed_;
  };

  explicit ShardedIds(ShardedConfig config);
  ~ShardedIds();
  ShardedIds(const ShardedIds&) = delete;
  ShardedIds& operator=(const ShardedIds&) = delete;

  /// Legacy single-threaded ingest: port 0 plus the opportunistic upstream
  /// drain — byte-for-byte the PR 5 driver contract. Call from one thread
  /// only (the coordinator thread). Multi-producer drivers use port(p)
  /// from their own threads and pump from the coordinator thread instead.
  void Ingest(const net::Datagram& dgram, bool from_outside, sim::Time when);

  /// The ingest port for producer p (0 <= p < producers()).
  IngestPort& port(int p) { return *ports_[static_cast<size_t>(p)]; }
  int producers() const { return static_cast<int>(ports_.size()); }

  /// True when `dgram` would take the SIP (Call-ID) routing path — the
  /// claim-carrying packet class of the claim-ordered ingest contract
  /// (file header): multi-producer drivers must ingest such a packet
  /// before handing any later-sequenced packet to another producer.
  /// `scratch` is the caller's reusable SIP parser (allocation-free after
  /// warm-up). Mirrors IngestOn's dispatch test byte for byte.
  static bool CarriesClaims(const net::Datagram& dgram,
                            sip::LazyMessage& scratch);

  /// Drains upstream rings: collects shard alerts, advances the aggregate
  /// replay to the current frontier. Cheap when nothing is pending; called
  /// opportunistically by Ingest, periodically by drivers. Coordinator
  /// thread only.
  void Pump();

  /// Quiescence barrier: every packet ingested so far is fully processed,
  /// every shard's detection timers have advanced to `now`, all aggregate
  /// events up to `now` are replayed, and shard state (metrics(),
  /// fact_base()) may be read from the calling thread until the next
  /// Ingest. Also prunes the idle media-owner entries. Requires quiescent
  /// ports (see the thread-ownership invariants above).
  void Flush(sim::Time now);

  /// Stops and joins the workers, then drains everything still in flight.
  /// Idempotent; the destructor calls it. Requires quiescent ports.
  void Stop();

  /// Merged alert stream in canonical order: by alert time, same-instant
  /// ties broken lexicographically by the rendered alert text. The key is
  /// a pure function of the alert content, never of arrival order, so the
  /// retained history renders byte-identically across runs, worker
  /// interleavings, shard counts and producer counts — the equivalence
  /// gates diff it directly. (Comparisons against the direct Vids engine
  /// must canonicalize its stream the same way: within one instant the
  /// direct engine keeps causal emission order instead.)
  const std::vector<Alert>& alerts() const { return alerts_; }
  size_t CountAlerts(AlertKind kind) const;
  size_t CountAlerts(std::string_view classification) const;
  void set_alert_callback(std::function<void(const Alert&)> cb) {
    alert_callback_ = std::move(cb);
  }

  int shards() const { return static_cast<int>(shards_.size()); }

  /// Shard access for post-Flush inspection (tests, the soak sampler).
  Vids& shard_vids(int i) { return *shards_[static_cast<size_t>(i)]->vids; }
  const Vids& shard_vids(int i) const {
    return *shards_[static_cast<size_t>(i)]->vids;
  }

  /// The coordinator's behavior engine — the single authority for
  /// behavioral profiles in a sharded deployment, fed by the aggregate
  /// replay. Post-Flush inspection only.
  const behavior::BehaviorEngine& behavior() const { return behavior_; }

  /// Fresh registry holding every shard's and every port's metrics folded
  /// together plus the coordinator's own "sharded.*" counters. Post-Flush
  /// only.
  obs::MetricsRegistry MergedMetrics() const;

  /// Total tracked state across shards (calls + keyed groups + tombstones +
  /// media index) plus the coordinator's router/replay maps. Post-Flush.
  size_t TrackedState() const;
  /// Total state footprint in bytes (fact bases, rings, arenas, ownership
  /// table, coordinator maps). Post-Flush.
  size_t MemoryBytes() const;

  /// Times any producer found a lane full and had to wait. Post-Flush.
  uint64_t ingest_stalls() const;
  /// Media-ownership transfers routed between shards so far. Post-Flush.
  uint64_t ownership_transfers() const;
  /// First-SDP-claim retractions sent to an endpoint's hash-fallback shard
  /// (early media arrived before its negotiation). Post-Flush.
  uint64_t early_media_retracts() const;
  /// Endpoint routes that fell off the two-deep claim history (packet older
  /// than both recorded eras — the bounded slow path). Post-Flush.
  uint64_t route_escalations() const;
  /// Shard-local sketch escalations reported to the coordinator: keys whose
  /// local event density alone proved they could sit inside a globally
  /// over-threshold window, and so turned hot (DESIGN.md §12).
  uint64_t aggregate_escalations() const { return m_escalations_->value(); }

  /// Stall episodes the watchdog has alerted on (one per episode; worker-
  /// and producer-attributed episodes both count).
  uint64_t watchdog_stalls() const { return m_watchdog_stalls_->value(); }

  /// The shard's last 32 sampled pipeline spans (kSpan flight records,
  /// oldest first). Post-Flush only.
  const obs::FlightRecorder& shard_spans(int i) const {
    return shards_[static_cast<size_t>(i)]->spans;
  }

  /// Test hooks: deliberately stall / release a worker mid-batch so the
  /// watchdog's stall detection can be exercised. A wedged worker keeps
  /// its lanes non-empty and its heartbeat frozen until un-wedged.
  void WedgeWorkerForTest(int shard);
  void UnwedgeWorkerForTest(int shard);

 private:
  template <typename T>
  using StringKeyed =
      std::unordered_map<std::string, T, common::StringHash, std::equal_to<>>;

  // ---- messages ----
  struct ShardMsg {
    enum class Kind : uint8_t {
      kPacket,        // ingest lanes
      kRetractMedia,  // ingest lanes (rides the claiming port's lane)
      kFlush,         // control lane (coordinator only)
      kStop,          // control lane
      kAggHot,        // control lane: `key` escalated on some shard
      kWedge,         // control lane: test hook (watchdog)
    };
    Kind kind = Kind::kPacket;
    int64_t when_ns = 0;
    /// Global arrival number: the worker merge's tiebreak at equal when_ns,
    /// which is what makes the multi-producer processing order identical
    /// to the single-producer one.
    uint64_t seq = 0;
    /// Pipeline span: wall-clock enqueue time of a sampled kPacket, 0 for
    /// unsampled ones (always assigned — ring slots are reused in place).
    int64_t span_enqueue_ns = 0;
    bool from_outside = false;
    /// kPacket payload location: bytes live in the lane's arena slot (same
    /// index as the ring slot) when in_arena, in dgram.payload otherwise.
    bool in_arena = false;
    uint32_t arena_len = 0;
    net::Datagram dgram;        // kPacket (payload string reused in place)
    net::Endpoint endpoint;     // kRetractMedia
    uint64_t token = 0;         // kFlush
    Vids::AggregateKind agg{};  // kAggHot
    std::string key;            // kAggHot (reused in place)
  };
  struct UpMsg {
    enum class Kind : uint8_t { kAlert, kAgg, kAggHot, kFlushAck };
    Kind kind = Kind::kAlert;
    int64_t when_ns = 0;
    Alert alert;                 // kAlert (strings reused in place)
    Vids::AggregateKind agg{};   // kAgg / kAggHot
    std::string key;             // kAgg: dest AOR (INVITE) / victim IP
                                 // (DRDoS) / profiled entity AOR (behavior)
    std::string src_ip;          // kAgg: for the alert detail
    std::string dst_ip;
    std::string peer;            // kAgg behavior: destination AOR
    std::string ua;              // kAgg behavior: User-Agent header
    uint64_t aux = 0;            // kAgg behavior: call hash / source id
    uint64_t token = 0;          // kFlushAck
  };

  /// One shard-local held-back aggregate event (worker-owned).
  struct HeldAggEvent {
    int64_t when_ns = 0;
    Vids::AggregateKind kind{};
    std::string key;
    std::string src_ip;
    std::string dst_ip;
    std::string peer;
    std::string ua;
    uint64_t aux = 0;
  };

  /// Per-key sliding sketch of this shard's most recent aggregate-event
  /// times (worker-owned). `recent` is a ring of the last E event times,
  /// E = the shard's escalation share: when all E land inside one
  /// detection window, the shard's local count alone proves the key could
  /// be inside a globally over-threshold window, and the key turns hot.
  struct AggSketch {
    std::vector<int64_t> recent;
    size_t next = 0;
    bool hot = false;
    int64_t last_event_ns = 0;
  };

  /// Worker-owned aggregate staging state. The coordinator may read it
  /// only behind a Flush() barrier (TrackedState/MemoryBytes).
  struct AggLocal {
    std::vector<HeldAggEvent> buf;  // time-ordered; [begin, end) live
    size_t begin = 0;
    size_t end = 0;
    StringKeyed<AggSketch> invite_sketch;
    StringKeyed<AggSketch> drdos_sketch;
    /// Keys currently hot on this shard. While nonzero the whole buffer is
    /// shipped at every batch end, so hot-key replay tracks the packet
    /// frontier instead of lagging by agg_hold.
    size_t hot_keys = 0;
    uint64_t events_buffered = 0;  // total hook events staged
    uint64_t events_shipped = 0;   // total shipped upstream
    size_t live() const { return end - begin; }
  };

  /// One producer→shard ingest lane: SPSC ring + its 1:1 payload slab.
  struct Lane {
    common::SpscRing<ShardMsg> ring;
    common::PayloadArena arena;
    Lane(size_t ring_capacity, size_t slot_bytes)
        : ring(ring_capacity), arena(ring.capacity(), slot_bytes) {}
  };

  struct Shard {
    /// Ingest lanes, one per port (index = port index).
    std::vector<std::unique_ptr<Lane>> lanes;
    /// Coordinator-only control lane (kFlush/kStop/kAggHot/kWedge).
    common::SpscRing<ShardMsg> down;
    common::SpscRing<UpMsg> up;
    std::unique_ptr<sim::Scheduler> scheduler;
    std::unique_ptr<Vids> vids;
    std::thread thread;
    int index = 0;

    // --- pipeline observability (DESIGN.md §13) ---
    /// Worker-private metrics: latency + batch histograms, no cross-shard
    /// atomics on the hot path. The worker is the only writer; the
    /// coordinator folds it into MergedMetrics() behind a Flush() barrier
    /// (both bare and under the "shard.<i>." prefix). Slots are resolved
    /// in the constructor, before the worker thread starts.
    obs::MetricsRegistry pipeline;
    obs::Histogram* lat_ingest_to_dequeue = nullptr;
    obs::Histogram* lat_inspect = nullptr;
    obs::Histogram* lat_e2e = nullptr;
    obs::Histogram* lat_ingest_to_alert = nullptr;
    obs::Histogram* batch_consumed = nullptr;
    /// Last 32 sampled spans as kSpan flight records (worker-owned;
    /// post-Flush read via shard_spans()).
    obs::FlightRecorder spans;
    /// Enqueue wall time of the sampled packet currently being inspected
    /// (worker-owned plain slot; lets the alert callback attribute an
    /// ingest→alert latency to the span). 0 between sampled packets.
    int64_t span_open_enqueue_ns = 0;
    /// Control-lane depth high-water mark (coordinator-owned — the control
    /// ring's producer side) and the up-ring mirror (worker-owned). The
    /// per-INGEST-lane marks live with their producing ports. Folded into
    /// MergedMetrics() post-Flush.
    uint64_t down_hwm = 0;
    uint64_t down_stalls = 0;
    uint64_t up_hwm = 0;
    /// Watchdog heartbeat: wall-clock time of the last batch this worker
    /// fully retired — or, during a sliced clock catch-up across a capture
    /// gap (AdvanceShardClock), of the last completed slice. Release-stored
    /// (only when the watchdog is enabled — the disabled config never
    /// reads the clock). A worker that is wedged, spinning in PushUp, or
    /// dead stops advancing it.
    std::atomic<int64_t> last_progress_ns{0};
    /// The ingest lane this worker's merge is blocked on (-1 = none): the
    /// lane is empty but its port's frontier has not passed the next
    /// processable message, so the merge may not proceed. Read by the
    /// watchdog to attribute a stall to the producer instead of the
    /// worker.
    std::atomic<int> waiting_on_lane{-1};
    /// Test hook: while set, the worker sleeps inside its current batch
    /// (heartbeat frozen, lanes non-empty) — a deliberate stall.
    std::atomic<bool> wedged{false};
    /// Source-time progress frontier: the highest packet/flush time this
    /// worker fully processed (post-batch), or its scheduler's position
    /// mid-catch-up (watchdog-enabled configs only). Post-batch stores are
    /// release-ordered after every upstream message for that time; the
    /// watchdog additionally reads this as source-reported progress so a
    /// worker sweeping through a replayed capture gap re-anchors its stall
    /// episode instead of alerting.
    std::atomic<int64_t> processed_ns{0};
    /// Aggregate-complete frontier: every aggregate event this shard will
    /// ever emit with when_ns <= this value is already published in the
    /// up-ring. Written (release) after the batch's ships are committed;
    /// the coordinator's replay gate is the min of these across shards.
    std::atomic<int64_t> agg_complete_ns{0};
    AggLocal agg;
    /// Times this worker found its up-ring full (worker-owned plain slot;
    /// the coordinator folds it into MergedMetrics post-Flush).
    uint64_t up_stalls = 0;
    /// Set (release) by the worker after it popped kStop, just before it
    /// returns. Stop() keeps draining the up-rings until every worker has
    /// raised this — a worker with lane backlog can be blocked in PushUp
    /// on a full up-ring, and joining it without draining would deadlock.
    std::atomic<bool> done{false};

    Shard(int producers, size_t ring_capacity, size_t arena_slot_bytes)
        : down(ring_capacity), up(ring_capacity) {
      lanes.reserve(static_cast<size_t>(producers));
      for (int p = 0; p < producers; ++p) {
        lanes.push_back(
            std::make_unique<Lane>(ring_capacity, arena_slot_bytes));
      }
    }
  };

  /// One forwarded aggregate-feed event, queued until the frontier passes.
  struct AggEvent {
    int64_t when_ns = 0;
    Vids::AggregateKind kind{};
    std::string key;
    std::string src_ip;
    std::string dst_ip;
    std::string peer;
    std::string ua;
    uint64_t aux = 0;
  };

  /// Coordinator-side replay of patterns.cpp's BuildWindowCounter (plus the
  /// Vids-level alert dedup): armed window, event count, lazy timer expiry.
  struct WinState {
    bool armed = false;
    int64_t count = 0;
    int64_t deadline_ns = 0;
    int64_t last_alert_ns = 0;
    bool alerted_once = false;
    int64_t last_event_ns = 0;
  };

  /// Why a producer batch was published — the flush-reason histogram's
  /// dimensions (DESIGN.md §13).
  enum class FlushReason : uint8_t {
    kFull,      // batch_max reached, or backpressure forced the open batch
    kDeadline,  // batch_flush_us bound expired (wall clock or source time)
    kBarrier,   // Pump/Flush/Stop/broadcast published everything
  };

  /// Coordinator-side view of one worker's health (coordinator thread).
  /// A stall episode is anchored when the shard's lanes first show pending
  /// work with an unchanged heartbeat, and cleared by any progress —
  /// wall-clock heartbeat or source-reported time. The second anchor is
  /// what keeps faster-than-real-time replay honest: a worker sweeping
  /// timers across a replayed capture gap advances processed_ns even when
  /// a heartbeat store has not landed yet.
  struct ShardHealth {
    int64_t hb_seen = -1;
    int64_t src_seen = -1;
    int64_t pending_since_ns = 0;  // 0 = no open episode
    bool alerted = false;
  };

  // ---- worker side ----
  void WorkerLoop(Shard& shard);
  /// True when every ingest lane of `shard` is drained and every port's
  /// frontier has passed `barrier_ns` — the precondition for honoring a
  /// control-lane kFlush (barrier = flush time) or kStop (INT64_MAX).
  bool LanesQuiescent(Shard& shard, int64_t barrier_ns);
  /// Processes one ingest-lane message (kPacket / kRetractMedia).
  void ProcessLaneMsg(Shard& shard, Lane& lane, size_t at, ShardMsg& msg,
                      net::Datagram& scratch, int64_t& watermark);
  /// Advances a shard's private scheduler to `when` (no-op if already
  /// there). With the watchdog enabled, large jumps — replayed capture
  /// gaps — run in bounded slices with a heartbeat and a processed_ns
  /// store per slice, so mid-batch catch-up work is visible as progress.
  void AdvanceShardClock(Shard& shard, sim::Time when);
  /// Records a sampled packet's span: latency histograms + a kSpan flight
  /// record. `t0` is the enqueue wall time, `t_dequeue` the worker's
  /// dequeue wall time; called right after Inspect returns.
  void RecordSpan(Shard& shard, int64_t t0, int64_t t_dequeue);
  // Fill-callbacks are template parameters (not std::function) so the
  // per-packet push never allocates a callable. Defined in the .cpp — only
  // that TU instantiates them.
  template <typename Fill>
  void PushUp(Shard& shard, Fill&& fill);
  /// Aggregate hook target (worker thread): stages the event in the
  /// shard-local buffer, updates the key's sliding sketch, and escalates
  /// the key to hot when the sketch crosses the shard's share.
  void BufferAggEvent(Shard& shard, Vids::AggregateKind kind,
                      std::string_view key, std::string_view src_ip,
                      std::string_view dst_ip, std::string_view peer,
                      std::string_view ua, uint64_t aux);
  /// Ships every held event with when_ns <= `horizon` upstream, in order,
  /// into the open up-batch (not yet committed). Updates agg bookkeeping;
  /// the caller publishes agg_complete_ns after committing.
  void ShipAggPrefix(Shard& shard, int64_t horizon);
  /// Drops sketch entries idle past the keyed horizon (worker thread;
  /// runs on kFlush so the maps stay bounded like the coordinator's).
  void PruneAggSketches(Shard& shard, int64_t now_ns);

  // ---- producer side (port threads) ----
  void IngestOn(IngestPort& port, const net::Datagram& dgram,
                bool from_outside, sim::Time when, uint64_t seq);
  /// Endpoint → shard: ownership view as of global arrival #`seq`, hash
  /// fallback on miss or pre-history.
  int RouteEndpoint(IngestPort& port, const net::Endpoint& endpoint,
                    int64_t when_ns, uint64_t seq);
  int ShardOfCallId(std::string_view call_id) const;
  int HashShardOfEndpoint(uint64_t packed_key) const;
  /// Applies the SDP body's ownership claims to the shared table and
  /// pushes the resulting kRetractMedia edges on this port's own lanes.
  void SnoopSdp(IngestPort& port, std::string_view body, int shard,
                int64_t when_ns, uint64_t seq);
  /// Reserve+fill one slot on this port's lane to `shard` (backpressure:
  /// inline-drain ports pump the coordinator, others spin-sleep).
  template <typename Fill>
  void PushLane(IngestPort& port, int shard, Fill&& fill);
  /// Publishes the port's frontier from open_min/last_when (monotonic).
  void PublishFrontier(IngestPort& port, int64_t candidate_ns);
  /// Commits every open lane batch of `port`, tagging the flush reason.
  void CommitPortLanes(IngestPort& port, FlushReason reason);
  void PortHeartbeat(IngestPort& port, sim::Time when);
  void PortClose(IngestPort& port);
  /// The dual-clock partial-batch deadline (DESIGN.md §12), per port.
  void PortDeadlineCheck(IngestPort& port, int64_t when_ns);

  // ---- coordinator ----
  void DrainUp();
  /// Replays pending aggregate events with when_ns <= `frontier` in global
  /// time order. The frontier must have been snapshotted (min
  /// agg_complete_ns, acquire) BEFORE the drain that filled pending_;
  /// INT64_MAX replays everything (only valid once the rings are final).
  void ReplayAggregates(int64_t frontier);
  void ReplayOne(const AggEvent& event);
  /// Inserts into the retained history at its canonical position (see
  /// alerts()).
  void EmitAlert(Alert alert);
  void PruneCoordinator(int64_t now_ns);
  /// Pushes one control message to `shard` (coordinator thread only;
  /// drains upstream while it waits out backpressure).
  template <typename Fill>
  void PushDown(int shard, Fill&& fill);
  /// Publishes every shard's open CONTROL batch (one release store each).
  void CommitAllDown(FlushReason reason);
  /// Re-broadcasts queued shard escalations (kAggHot) down every control
  /// lane. Deferred out of the drain loop and guarded against re-entry:
  /// PushDown can call DrainUp while it waits out backpressure.
  void BroadcastHotKeys();
  /// Stall detector (coordinator thread, called from DrainUp and throttled
  /// to ~threshold/8): raises one EngineHealth alert per stall episode,
  /// attributed to the producer lane the worker is merge-blocked on when
  /// there is one. Every blocking loop (backpressure, Flush, Stop) drains
  /// through here, so a wedged worker or producer surfaces instead of
  /// hanging silently.
  void WatchdogCheck();
  /// Highest ingest time across ports (coordinator; used for alert stamps).
  int64_t LatestIngestNs() const;

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<IngestPort>> ports_;
  /// Shared media-endpoint ownership view (lock-free readers, serialized
  /// claims — media_owner_table.h).
  std::unique_ptr<MediaOwnerTable> owner_table_;
  bool workers_joined_ = false;
  int64_t last_ingest_ns_ = 0;   // legacy single-thread path bookkeeping
  uint64_t ingest_count_ = 0;
  uint64_t flush_token_ = 0;
  size_t flush_acks_ = 0;

  StringKeyed<WinState> invite_windows_;  // key = destination AOR
  StringKeyed<WinState> drdos_windows_;   // key = victim IP (dotted)
  /// Coordinator-side behavioral profiling engine (DESIGN.md §16). Fed
  /// exclusively from the frontier-gated aggregate replay, so it consumes
  /// the identical globally time-ordered event stream the plain engine's
  /// inline instance sees — behavioral alerts are byte-identical across
  /// shard and producer counts by construction. Swept by PruneCoordinator.
  behavior::BehaviorEngine behavior_;
  std::vector<std::deque<AggEvent>> pending_;  // per-shard, time-ordered

  /// Keys already broadcast hot, by kind → last escalation time. Dedups the
  /// broadcast (several shards may escalate one key); pruned with the
  /// window states once idle.
  StringKeyed<int64_t> hot_invite_;
  StringKeyed<int64_t> hot_drdos_;
  struct HotBroadcast {
    Vids::AggregateKind agg{};
    std::string key;
    int64_t when_ns = 0;
  };
  /// Escalations collected during DrainUp, broadcast after the drain (a
  /// broadcast can hit backpressure, which re-enters DrainUp).
  std::vector<HotBroadcast> hot_pending_;
  bool broadcasting_ = false;
  /// True once Stop() started: no more control broadcasts (a worker past
  /// its kStop never drains them, so a full ring would wait forever).
  bool stopping_ = false;

  /// Span sampling. trace_on_/trace_mask_ are derived from
  /// trace_sample_period once in the constructor; the off configuration
  /// leaves trace_on_ false and the sampling check is one dead branch.
  bool trace_on_ = false;
  uint32_t trace_mask_ = 0;

  /// Watchdog (coordinator thread). threshold 0 = disabled; checks
  /// throttle to poll_ns so the hot path reads the clock at most once per
  /// poll window.
  int64_t watchdog_threshold_ns_ = 0;
  int64_t watchdog_poll_ns_ = 0;
  int64_t last_watchdog_check_ns_ = 0;
  std::vector<ShardHealth> health_;

  /// Per-shard escalation shares: ceil(fraction * (threshold + 1) / shards)
  /// local events inside one window turn a key hot. Computed once in the
  /// constructor.
  int64_t esc_invite_share_ = 1;
  int64_t esc_drdos_share_ = 1;

  /// Canonical deterministic sort key of each retained alert (parallel to
  /// alerts_): alert time, ties broken by the rendered alert text.
  struct AlertKey {
    int64_t when_ns = 0;
    std::string text;
    bool operator<(const AlertKey& o) const {
      if (when_ns != o.when_ns) return when_ns < o.when_ns;
      return text < o.text;
    }
  };
  std::vector<Alert> alerts_;
  std::vector<AlertKey> alert_keys_;
  std::function<void(const Alert&)> alert_callback_;

  obs::MetricsRegistry coord_metrics_;
  obs::Counter* m_agg_events_;
  obs::Counter* m_coord_alerts_;
  obs::Counter* m_coord_suppressed_;
  obs::Counter* m_flushes_;
  obs::Counter* m_escalations_;
  obs::Counter* m_watchdog_stalls_;
  obs::Counter* m_watchdog_producer_stalls_;
  obs::Counter* m_flush_full_;
  obs::Counter* m_flush_barrier_;
  /// Size of every published nonzero control batch (coordinator thread;
  /// ports record their own lane batches).
  obs::Histogram* m_batch_committed_;
};

}  // namespace vids::ids
