// Sharded multi-worker vIDS engine.
//
// The paper's vIDS keeps its state strictly per call (one EFSM group per
// Call-ID) and per key (media endpoint, destination AOR, victim host) —
// there is no cross-call coupling in the fact base itself. That makes the
// engine horizontally partitionable: ShardedIds runs N complete, private
// `Vids` instances ("shards"), one worker thread each, and a router on the
// ingest thread that hash-partitions traffic so every piece of keyed state
// is only ever touched by one thread:
//
//   SIP            → FNV-1a(Call-ID) mod N. All packets of a dialog land on
//                    one shard, so call groups, tombstones and the per-call
//                    patterns behave exactly as in the single engine.
//   RTP            → media-endpoint owner map (maintained by an SDP snoop
//                    on the routed SIP traffic: the endpoint belongs to the
//                    shard of the call that negotiated it), falling back to
//                    a hash of the destination endpoint for unnegotiated
//                    media. Either way one endpoint → one shard, so the
//                    per-endpoint pattern groups (RTP flood, media spam,
//                    RTCP BYE) count a coherent stream.
//   RTCP           → folded onto its media endpoint (port − 1) and routed
//                    like RTP, so the ghost-media machine sees both halves.
//   anything else  → hash of the destination endpoint.
//
// Packets travel on fixed-capacity SPSC rings (common/spsc_ring.h), one
// down-ring per shard; a full ring is backpressure (the producer drains the
// upstream rings while it waits), never an allocation or a drop. Ring slots
// are reused in place, so the PR-4 zero-allocation inspect path extends
// through the handoff: steady-state ingest copies payload bytes into a
// warm slot string and the worker swaps them out, allocation-free.
//
// The two detectors whose counting key spans calls — INVITE flooding (per
// destination AOR) and DRDoS reflection (per victim host) — cannot live in
// any one shard, because their events originate on whichever shard the
// carrying dialog hashed to. Shards therefore do not feed those window
// counters locally (Vids::set_aggregate_hook). Each shard *buffers* its
// would-be events in a local, time-ordered staging buffer and keeps a
// per-key sliding sketch of its most recent event times; events ship
// upstream in batches once they age past `agg_hold`, or immediately when
// the sketch detects that the shard's local share of a key could be part
// of a global over-threshold window (escalation: the key turns *hot* on
// every shard and bypasses the buffer from then on). The coordinator
// replays the merged, time-ordered event stream into its own window
// counters with the exact BuildWindowCounter semantics. The replay is
// gated on the *aggregate-complete frontier* (the minimum time up to
// which every shard guarantees all its aggregate events are already in
// the ring, published with release/acquire ordering), so events are
// replayed in global time order even though shards buffer and drain at
// different speeds. The alert multiset is therefore identical for every
// shard count — sharded_ids_test pins shards=1 vs shards=4 vs the plain
// single-threaded Vids. See DESIGN.md §12 for the exactness argument.
//
// Thread-ownership invariants (see DESIGN.md §11):
//   - each shard's Scheduler + Vids are touched only by its worker thread;
//   - the rings are strict SPSC (ingest thread ↔ one worker);
//   - the coordinator reads shard state (metrics, fact base) only after a
//     Flush() barrier, which round-trips a token through both rings and so
//     carries a happens-before edge over everything the worker did;
//   - alerts, aggregate events and acks flow only upstream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/backoff.h"
#include "common/spsc_ring.h"
#include "common/strings.h"
#include "net/datagram.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "sip/lazy_message.h"
#include "vids/alert.h"
#include "vids/config.h"
#include "vids/ids.h"

namespace vids::ids {

struct ShardedConfig {
  /// Number of worker shards (>= 1). 1 reproduces the single-engine
  /// behavior with the pipeline in place.
  int shards = 1;
  /// Per-ring slot count (rounded up to a power of two). A full ring
  /// backpressures the producer; it never drops or allocates.
  size_t ring_capacity = 1024;
  DetectionConfig detection{};
  CostModel cost{};
  /// Cap on the coordinator's merged alert history (0 = unlimited); same
  /// drop-oldest-half policy as Vids::set_max_retained_alerts.
  size_t max_retained_alerts = 0;

  // --- batching (DESIGN.md §12) ---
  /// Max ring slots published/consumed per release/acquire pair. 1
  /// reproduces the PR-5 slot-at-a-time handoff exactly; larger values
  /// amortize the index fences and the consumer wakeups over the batch.
  size_t batch_max = 32;
  /// Bound on how long a partial producer batch may stay unpublished while
  /// the ingest thread keeps calling Ingest()/Pump() — enforced in BOTH
  /// clock domains: wall clock, and the source timestamps carried by
  /// Ingest(), so a faster-than-real-time replay (pcap/trace) cannot hold
  /// packets unpublished across a capture gap that spans almost no wall
  /// time. Flush() and Stop() always publish immediately.
  int64_t batch_flush_us = 50;
  /// Busy-wait shape for the worker loops: yields before the first sleep,
  /// then the idle sleep. See common/backoff.h for the defaults.
  int idle_spins = common::kSpinsBeforeSleep;
  int64_t idle_sleep_us = common::kIdleSleepMicros;

  // --- coordinator-free aggregate path (DESIGN.md §12) ---
  /// How long (simulated time) a shard may hold a cold aggregate event
  /// locally before shipping it upstream. Larger values batch harder and
  /// delay cold-key replay by at most this much; alerts carry event
  /// timestamps, so the alert multiset is unaffected. 0 ships every event
  /// at the end of the batch that produced it (PR-5 behavior, batched).
  sim::Duration agg_hold = sim::Duration::Millis(250);
  /// Fraction of the per-shard escalation share at which a key turns hot.
  /// The share is ceil((threshold + 1) / shards): by pigeonhole at least
  /// one shard reaches it inside any globally over-threshold window, so
  /// values <= 1.0 preserve exact alerts (lower escalates earlier and
  /// ships more events eagerly; values above 1.0 are clamped to 1.0).
  double agg_escalation_fraction = 1.0;

  // --- pipeline observability (DESIGN.md §13) ---
  /// Sample one in this many ingested packets for a pipeline span: the
  /// ingest thread stamps the enqueue wall time, the worker records
  /// ingest→dequeue / inspect / end-to-end (and, if the packet alerted,
  /// ingest→alert) into its shard-local latency histograms plus a kSpan
  /// flight record. Rounded up to a power of two. 0 disables tracing: the
  /// ingest path then carries a single always-false branch — no clock
  /// read, no counter tick — and the worker's span branch never takes.
  uint32_t trace_sample_period = 1024;
  /// Watchdog deadline (wall clock): a worker whose down-ring stays
  /// non-empty while its heartbeat does not advance for this long raises
  /// one structured EngineHealth alert per stall episode, so a wedged
  /// worker can never hang the engine silently. 0 disables the watchdog
  /// (and the worker's per-batch heartbeat clock read).
  int64_t watchdog_stall_ms = 2000;
};

class ShardedIds {
 public:
  explicit ShardedIds(ShardedConfig config);
  ~ShardedIds();
  ShardedIds(const ShardedIds&) = delete;
  ShardedIds& operator=(const ShardedIds&) = delete;

  /// Routes one packet to its shard. `when` is the packet's (simulated)
  /// arrival time and must be non-decreasing across calls. Blocks only when
  /// the target ring is full (backpressure), draining upstream traffic
  /// while it waits. Call from one thread only.
  void Ingest(const net::Datagram& dgram, bool from_outside, sim::Time when);

  /// Drains upstream rings: collects shard alerts, advances the aggregate
  /// replay to the current frontier. Cheap when nothing is pending; called
  /// opportunistically by Ingest, periodically by drivers.
  void Pump();

  /// Quiescence barrier: every packet ingested so far is fully processed,
  /// every shard's detection timers have advanced to `now`, all aggregate
  /// events up to `now` are replayed, and shard state (metrics(),
  /// fact_base()) may be read from the calling thread until the next
  /// Ingest. Also prunes the router's idle media-owner entries.
  void Flush(sim::Time now);

  /// Stops and joins the workers, then drains everything still in flight.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Merged alert stream: shard alerts in arrival order interleaved with
  /// coordinator (aggregate) alerts in replay order. Sort by `when` for a
  /// deterministic view.
  const std::vector<Alert>& alerts() const { return alerts_; }
  size_t CountAlerts(AlertKind kind) const;
  size_t CountAlerts(std::string_view classification) const;
  void set_alert_callback(std::function<void(const Alert&)> cb) {
    alert_callback_ = std::move(cb);
  }

  int shards() const { return static_cast<int>(shards_.size()); }

  /// Shard access for post-Flush inspection (tests, the soak sampler).
  Vids& shard_vids(int i) { return *shards_[static_cast<size_t>(i)]->vids; }
  const Vids& shard_vids(int i) const {
    return *shards_[static_cast<size_t>(i)]->vids;
  }

  /// Fresh registry holding every shard's metrics folded together plus the
  /// coordinator's own "sharded.*" counters. Post-Flush only.
  obs::MetricsRegistry MergedMetrics() const;

  /// Total tracked state across shards (calls + keyed groups + tombstones +
  /// media index) plus the coordinator's router/replay maps. Post-Flush.
  size_t TrackedState() const;
  /// Total state footprint in bytes (fact bases + coordinator maps).
  /// Post-Flush.
  size_t MemoryBytes() const;

  /// Times the producer found a down-ring full and had to wait.
  uint64_t ingest_stalls() const { return m_ingest_stalls_->value(); }
  /// Media-ownership transfers routed between shards so far.
  uint64_t ownership_transfers() const { return m_retracts_->value(); }
  /// First-SDP-claim retractions sent to an endpoint's hash-fallback shard
  /// (early media arrived before its negotiation; see SnoopSdp).
  uint64_t early_media_retracts() const { return m_early_retracts_->value(); }
  /// Shard-local sketch escalations reported to the coordinator: keys whose
  /// local event density alone proved they could sit inside a globally
  /// over-threshold window, and so turned hot (DESIGN.md §12).
  uint64_t aggregate_escalations() const { return m_escalations_->value(); }

  /// Worker-stall episodes the watchdog has alerted on (one per episode).
  uint64_t watchdog_stalls() const { return m_watchdog_stalls_->value(); }

  /// The shard's last 32 sampled pipeline spans (kSpan flight records,
  /// oldest first). Post-Flush only.
  const obs::FlightRecorder& shard_spans(int i) const {
    return shards_[static_cast<size_t>(i)]->spans;
  }

  /// Test hooks: deliberately stall / release a worker mid-batch so the
  /// watchdog's stall detection can be exercised. A wedged worker keeps
  /// its down-ring non-empty and its heartbeat frozen until un-wedged.
  void WedgeWorkerForTest(int shard);
  void UnwedgeWorkerForTest(int shard);

 private:
  template <typename T>
  using StringKeyed =
      std::unordered_map<std::string, T, common::StringHash, std::equal_to<>>;

  // ---- messages ----
  struct ShardMsg {
    enum class Kind : uint8_t {
      kPacket,
      kRetractMedia,
      kFlush,
      kStop,
      kAggHot,  // coordinator broadcast: `key` escalated on some shard
      kWedge,   // test hook: the worker sleeps until un-wedged (watchdog)
    };
    Kind kind = Kind::kPacket;
    int64_t when_ns = 0;
    /// Pipeline span: wall-clock enqueue time of a sampled kPacket, 0 for
    /// unsampled ones (always assigned — ring slots are reused in place).
    int64_t span_enqueue_ns = 0;
    bool from_outside = false;
    net::Datagram dgram;        // kPacket (payload string reused in place)
    net::Endpoint endpoint;     // kRetractMedia
    uint64_t token = 0;         // kFlush
    Vids::AggregateKind agg{};  // kAggHot
    std::string key;            // kAggHot (reused in place)
  };
  struct UpMsg {
    enum class Kind : uint8_t { kAlert, kAgg, kAggHot, kFlushAck };
    Kind kind = Kind::kAlert;
    int64_t when_ns = 0;
    Alert alert;                 // kAlert (strings reused in place)
    Vids::AggregateKind agg{};   // kAgg / kAggHot
    std::string key;             // kAgg: dest AOR (INVITE) / victim IP (DRDoS)
    std::string src_ip;          // kAgg: for the alert detail
    std::string dst_ip;
    uint64_t token = 0;          // kFlushAck
  };

  /// One shard-local held-back aggregate event (worker-owned).
  struct HeldAggEvent {
    int64_t when_ns = 0;
    Vids::AggregateKind kind{};
    std::string key;
    std::string src_ip;
    std::string dst_ip;
  };

  /// Per-key sliding sketch of this shard's most recent aggregate-event
  /// times (worker-owned). `recent` is a ring of the last E event times,
  /// E = the shard's escalation share: when all E land inside one
  /// detection window, the shard's local count alone proves the key could
  /// be inside a globally over-threshold window, and the key turns hot.
  struct AggSketch {
    std::vector<int64_t> recent;
    size_t next = 0;
    bool hot = false;
    int64_t last_event_ns = 0;
  };

  /// Worker-owned aggregate staging state. The coordinator may read it
  /// only behind a Flush() barrier (TrackedState/MemoryBytes).
  struct AggLocal {
    std::vector<HeldAggEvent> buf;  // time-ordered; [begin, end) live
    size_t begin = 0;
    size_t end = 0;
    StringKeyed<AggSketch> invite_sketch;
    StringKeyed<AggSketch> drdos_sketch;
    /// Keys currently hot on this shard. While nonzero the whole buffer is
    /// shipped at every batch end, so hot-key replay tracks the packet
    /// frontier instead of lagging by agg_hold.
    size_t hot_keys = 0;
    uint64_t events_buffered = 0;  // total hook events staged
    uint64_t events_shipped = 0;   // total shipped upstream
    size_t live() const { return end - begin; }
  };

  struct Shard {
    common::SpscRing<ShardMsg> down;
    common::SpscRing<UpMsg> up;
    std::unique_ptr<sim::Scheduler> scheduler;
    std::unique_ptr<Vids> vids;
    std::thread thread;
    int index = 0;

    // --- pipeline observability (DESIGN.md §13) ---
    /// Worker-private metrics: latency + batch histograms, no cross-shard
    /// atomics on the hot path. The worker is the only writer; the
    /// coordinator folds it into MergedMetrics() behind a Flush() barrier
    /// (both bare and under the "shard.<i>." prefix). Slots are resolved
    /// in the constructor, before the worker thread starts.
    obs::MetricsRegistry pipeline;
    obs::Histogram* lat_ingest_to_dequeue = nullptr;
    obs::Histogram* lat_inspect = nullptr;
    obs::Histogram* lat_e2e = nullptr;
    obs::Histogram* lat_ingest_to_alert = nullptr;
    obs::Histogram* batch_consumed = nullptr;
    /// Last 32 sampled spans as kSpan flight records (worker-owned;
    /// post-Flush read via shard_spans()).
    obs::FlightRecorder spans;
    /// Enqueue wall time of the sampled packet currently being inspected
    /// (worker-owned plain slot; lets the alert callback attribute an
    /// ingest→alert latency to the span). 0 between sampled packets.
    int64_t span_open_enqueue_ns = 0;
    /// Down-ring depth high-water mark + backpressure stalls (ingest-thread
    /// owned — the ring's producer side) and the up-ring mirror
    /// (worker-owned). Folded into MergedMetrics() post-Flush.
    uint64_t down_hwm = 0;
    uint64_t down_stalls = 0;
    uint64_t up_hwm = 0;
    /// Watchdog heartbeat: wall-clock time of the last batch this worker
    /// fully retired — or, during a sliced clock catch-up across a capture
    /// gap (AdvanceShardClock), of the last completed slice. Release-stored
    /// (only when the watchdog is enabled — the disabled config never
    /// reads the clock). A worker that is wedged, spinning in PushUp, or
    /// dead stops advancing it.
    std::atomic<int64_t> last_progress_ns{0};
    /// Test hook: while set, the worker sleeps inside its current batch
    /// (heartbeat frozen, down-ring non-empty) — a deliberate stall.
    std::atomic<bool> wedged{false};
    /// Source-time progress frontier: the highest packet/flush time this
    /// worker fully processed (post-batch), or its scheduler's position
    /// mid-catch-up (watchdog-enabled configs only). Post-batch stores are
    /// release-ordered after every upstream message for that time; the
    /// watchdog additionally reads this as source-reported progress so a
    /// worker sweeping through a replayed capture gap re-anchors its stall
    /// episode instead of alerting.
    std::atomic<int64_t> processed_ns{0};
    /// Aggregate-complete frontier: every aggregate event this shard will
    /// ever emit with when_ns <= this value is already published in the
    /// up-ring. Written (release) after the batch's ships are committed;
    /// the coordinator's replay gate is the min of these across shards.
    std::atomic<int64_t> agg_complete_ns{0};
    AggLocal agg;
    /// Times this worker found its up-ring full (worker-owned plain slot;
    /// the coordinator folds it into MergedMetrics post-Flush).
    uint64_t up_stalls = 0;
    /// Set (release) by the worker after it popped kStop, just before it
    /// returns. Stop() keeps draining the up-rings until every worker has
    /// raised this — a worker with down-ring backlog can be blocked in
    /// PushUp on a full up-ring, and joining it without draining would
    /// deadlock.
    std::atomic<bool> done{false};

    explicit Shard(size_t ring_capacity)
        : down(ring_capacity), up(ring_capacity) {}
  };

  /// One forwarded aggregate-feed event, queued until the frontier passes.
  struct AggEvent {
    int64_t when_ns = 0;
    Vids::AggregateKind kind{};
    std::string key;
    std::string src_ip;
    std::string dst_ip;
  };

  /// Coordinator-side replay of patterns.cpp's BuildWindowCounter (plus the
  /// Vids-level alert dedup): armed window, event count, lazy timer expiry.
  struct WinState {
    bool armed = false;
    int64_t count = 0;
    int64_t deadline_ns = 0;
    int64_t last_alert_ns = 0;
    bool alerted_once = false;
    int64_t last_event_ns = 0;
  };

  struct OwnerEntry {
    int shard = 0;
    int64_t last_seen_ns = 0;
  };

  /// Why a producer batch was published — the flush-reason histogram's
  /// dimensions (DESIGN.md §13).
  enum class FlushReason : uint8_t {
    kFull,      // batch_max reached, or backpressure forced the open batch
    kDeadline,  // batch_flush_us bound expired (wall clock or source time)
    kBarrier,   // Pump/Flush/Stop/broadcast published everything
  };

  /// Coordinator-side view of one worker's health (ingest thread only).
  /// A stall episode is anchored when the shard's down-ring first shows
  /// pending work with an unchanged heartbeat, and cleared by any
  /// progress — wall-clock heartbeat or source-reported time. The second
  /// anchor is what keeps faster-than-real-time replay honest: a worker
  /// sweeping timers across a replayed capture gap advances processed_ns
  /// even when a heartbeat store has not landed yet.
  struct ShardHealth {
    int64_t hb_seen = -1;
    int64_t src_seen = -1;
    int64_t pending_since_ns = 0;  // 0 = no open episode
    bool alerted = false;
  };

  // ---- worker side ----
  void WorkerLoop(Shard& shard);
  /// Advances a shard's private scheduler to `when` (no-op if already
  /// there). With the watchdog enabled, large jumps — replayed capture
  /// gaps — run in bounded slices with a heartbeat and a processed_ns
  /// store per slice, so mid-batch catch-up work is visible as progress.
  void AdvanceShardClock(Shard& shard, sim::Time when);
  /// Records a sampled packet's span: latency histograms + a kSpan flight
  /// record. `t0` is the enqueue wall time, `t_dequeue` the worker's
  /// dequeue wall time; called right after Inspect returns.
  void RecordSpan(Shard& shard, int64_t t0, int64_t t_dequeue);
  // Fill-callbacks are template parameters (not std::function) so the
  // per-packet push never allocates a callable. Defined in the .cpp — only
  // that TU instantiates them.
  template <typename Fill>
  void PushUp(Shard& shard, Fill&& fill);
  /// Aggregate hook target (worker thread): stages the event in the
  /// shard-local buffer, updates the key's sliding sketch, and escalates
  /// the key to hot when the sketch crosses the shard's share.
  void BufferAggEvent(Shard& shard, Vids::AggregateKind kind,
                      std::string_view key, std::string_view src_ip,
                      std::string_view dst_ip);
  /// Ships every held event with when_ns <= `horizon` upstream, in order,
  /// into the open up-batch (not yet committed). Updates agg bookkeeping;
  /// the caller publishes agg_complete_ns after committing.
  void ShipAggPrefix(Shard& shard, int64_t horizon);
  /// Drops sketch entries idle past the keyed horizon (worker thread;
  /// runs on kFlush so the maps stay bounded like the coordinator's).
  void PruneAggSketches(Shard& shard, int64_t now_ns);

  // ---- router (ingest thread) ----
  int RouteEndpoint(const net::Endpoint& endpoint, int64_t when_ns);
  int ShardOfCallId(std::string_view call_id) const;
  void SnoopSdp(std::string_view body, int shard, int64_t when_ns);
  template <typename Fill>
  void PushDown(int shard, Fill&& fill);
  /// Publishes every shard's open down-batch (one release store each),
  /// recording each nonzero batch's size and the given flush reason.
  void CommitAllDown(FlushReason reason);

  // ---- coordinator (ingest thread) ----
  void DrainUp();
  /// Replays pending aggregate events with when_ns <= `frontier` in global
  /// time order. The frontier must have been snapshotted (min
  /// agg_complete_ns, acquire) BEFORE the drain that filled pending_;
  /// INT64_MAX replays everything (only valid once the rings are final).
  void ReplayAggregates(int64_t frontier);
  void ReplayOne(const AggEvent& event);
  void EmitAlert(Alert alert);
  void PruneCoordinator(int64_t now_ns);
  /// Re-broadcasts queued shard escalations (kAggHot) down every ring.
  /// Deferred out of the drain loop and guarded against re-entry: PushDown
  /// can call DrainUp while it waits out backpressure.
  void BroadcastHotKeys();
  /// Stall detector (ingest thread, called from DrainUp and throttled to
  /// ~threshold/8): raises one EngineHealth alert per worker-stall episode.
  /// Every blocking loop (backpressure, Flush, Stop) drains through here,
  /// so a wedged worker surfaces instead of hanging silently.
  void WatchdogCheck();

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool workers_joined_ = false;
  int64_t last_ingest_ns_ = 0;
  uint64_t ingest_count_ = 0;
  uint64_t flush_token_ = 0;
  size_t flush_acks_ = 0;

  sip::LazyMessage router_lazy_;
  /// media endpoint (PackedKey) → owning shard. Entries refresh on every
  /// RTP hit and are pruned once idle past the shard-side state horizon.
  std::unordered_map<uint64_t, OwnerEntry> media_owner_;

  StringKeyed<WinState> invite_windows_;  // key = destination AOR
  StringKeyed<WinState> drdos_windows_;   // key = victim IP (dotted)
  std::vector<std::deque<AggEvent>> pending_;  // per-shard, time-ordered

  /// Keys already broadcast hot, by kind → last escalation time. Dedups the
  /// broadcast (several shards may escalate one key); pruned with the
  /// window states once idle.
  StringKeyed<int64_t> hot_invite_;
  StringKeyed<int64_t> hot_drdos_;
  struct HotBroadcast {
    Vids::AggregateKind agg{};
    std::string key;
    int64_t when_ns = 0;
  };
  /// Escalations collected during DrainUp, broadcast after the drain (a
  /// broadcast can hit backpressure, which re-enters DrainUp).
  std::vector<HotBroadcast> hot_pending_;
  bool broadcasting_ = false;
  /// True once Stop() started: no more down-ring broadcasts (a worker past
  /// its kStop never drains them, so a full ring would wait forever).
  bool stopping_ = false;

  /// Producer-batch flush bookkeeping (ingest thread; batch_max > 1 only,
  /// so the batch_max == 1 configuration never reads the clock). The
  /// deadline binds in both clock domains: down_open_since_ is the wall
  /// instant the batch opened, down_open_src_ns_ the source timestamp of
  /// the Ingest that opened it.
  bool down_open_ = false;
  std::chrono::steady_clock::time_point down_open_since_{};
  int64_t down_open_src_ns_ = 0;

  /// Span sampling (ingest thread). trace_on_/trace_mask_ are derived from
  /// trace_sample_period once in the constructor; the off configuration
  /// leaves trace_on_ false and the sampling check is one dead branch.
  bool trace_on_ = false;
  uint32_t trace_mask_ = 0;
  uint32_t trace_tick_ = 0;

  /// Watchdog (ingest thread). threshold 0 = disabled; checks throttle to
  /// poll_ns so the hot path reads the clock at most once per poll window.
  int64_t watchdog_threshold_ns_ = 0;
  int64_t watchdog_poll_ns_ = 0;
  int64_t last_watchdog_check_ns_ = 0;
  std::vector<ShardHealth> health_;

  /// Per-shard escalation shares: ceil(fraction * (threshold + 1) / shards)
  /// local events inside one window turn a key hot. Computed once in the
  /// constructor.
  int64_t esc_invite_share_ = 1;
  int64_t esc_drdos_share_ = 1;

  std::vector<Alert> alerts_;
  std::function<void(const Alert&)> alert_callback_;

  obs::MetricsRegistry coord_metrics_;
  obs::Counter* m_ingest_stalls_;
  obs::Counter* m_retracts_;
  obs::Counter* m_early_retracts_;
  obs::Counter* m_agg_events_;
  obs::Counter* m_coord_alerts_;
  obs::Counter* m_coord_suppressed_;
  obs::Counter* m_sip_routed_;
  obs::Counter* m_rtp_owner_routed_;
  obs::Counter* m_rtp_hash_routed_;
  obs::Counter* m_flushes_;
  obs::Counter* m_escalations_;
  obs::Counter* m_watchdog_stalls_;
  obs::Counter* m_flush_full_;
  obs::Counter* m_flush_deadline_;
  obs::Counter* m_flush_barrier_;
  /// Size of every published nonzero producer batch (ingest thread).
  obs::Histogram* m_batch_committed_;
};

}  // namespace vids::ids
