#include "vids/alert.h"

#include <sstream>

namespace vids::ids {

std::string_view AlertKindName(AlertKind kind) {
  switch (kind) {
    case AlertKind::kAttackPattern: return "ATTACK";
    case AlertKind::kSpecDeviation: return "DEVIATION";
    case AlertKind::kMalformed: return "MALFORMED";
    case AlertKind::kNondeterminism: return "NONDETERMINISM";
    case AlertKind::kEngineHealth: return "ENGINE_HEALTH";
    case AlertKind::kBehavior: return "BEHAVIOR";
  }
  return "?";
}

std::string Alert::ToString() const {
  std::ostringstream out;
  out << "[" << AlertKindName(kind) << "] t=" << when.ToSeconds() << "s "
      << classification << " (machine=" << machine << ", group=" << group
      << ", state=" << state << ")";
  if (!detail.empty()) out << " " << detail;
  return out.str();
}

std::string Alert::ProvenanceToString() const {
  std::ostringstream out;
  out << ToString() << "\n";
  if (!trigger.empty()) out << "  trigger: " << trigger << "\n";
  if (provenance.empty()) {
    out << "  (no flight records)\n";
  } else {
    out << "  last " << provenance.size() << " call events:\n";
    for (const std::string& line : provenance) out << "    " << line << "\n";
  }
  return out.str();
}

}  // namespace vids::ids
