#include "vids/alert.h"

#include <sstream>

namespace vids::ids {

std::string_view AlertKindName(AlertKind kind) {
  switch (kind) {
    case AlertKind::kAttackPattern: return "ATTACK";
    case AlertKind::kSpecDeviation: return "DEVIATION";
    case AlertKind::kMalformed: return "MALFORMED";
    case AlertKind::kNondeterminism: return "NONDETERMINISM";
  }
  return "?";
}

std::string Alert::ToString() const {
  std::ostringstream out;
  out << "[" << AlertKindName(kind) << "] t=" << when.ToSeconds() << "s "
      << classification << " (machine=" << machine << ", group=" << group
      << ", state=" << state << ")";
  if (!detail.empty()) out << " " << detail;
  return out.str();
}

}  // namespace vids::ids
