// Alerts raised by the vIDS Analysis Engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace vids::ids {

enum class AlertKind : uint8_t {
  /// A transition reached a state annotated as an attack state — a known
  /// attack-scenario match (misuse-style evidence, zero false positives by
  /// construction against the modeled patterns).
  kAttackPattern,
  /// Traffic deviated from a protocol specification machine — anomaly-style
  /// evidence capable of flagging previously unseen attacks.
  kSpecDeviation,
  /// A packet that failed to parse as its protocol.
  kMalformed,
  /// A machine definition fired multiple predicates at once (§4.1 wants
  /// them mutually disjoint) — a bug in the ruleset, surfaced loudly.
  kNondeterminism,
};

std::string_view AlertKindName(AlertKind kind);

struct Alert {
  sim::Time when;
  AlertKind kind = AlertKind::kSpecDeviation;
  /// Attack classification, e.g. "BYE DoS", "INVITE flood"; for deviations a
  /// description of the unexpected event.
  std::string classification;
  std::string machine;   // EFSM instance that raised it
  std::string group;     // call id or per-destination key
  std::string state;     // machine state at the time
  std::string detail;    // free-form evidence (addresses, counters)

  /// The transition that fired the alert, e.g. "SIP: 'BYE' InCall -> Attack".
  std::string trigger;
  /// The call's flight-recorder tail at emission time (≤ 32 rendered
  /// records, oldest first) — the "why": every EFSM transition, sync
  /// channel send, fact-base change and prior alert of this call.
  std::vector<std::string> provenance;

  std::string ToString() const;
  /// Multi-line report: ToString(), the trigger, then provenance indented.
  std::string ProvenanceToString() const;
};

}  // namespace vids::ids
