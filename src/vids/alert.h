// Alerts raised by the vIDS Analysis Engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace vids::ids {

enum class AlertKind : uint8_t {
  /// A transition reached a state annotated as an attack state — a known
  /// attack-scenario match (misuse-style evidence, zero false positives by
  /// construction against the modeled patterns).
  kAttackPattern,
  /// Traffic deviated from a protocol specification machine — anomaly-style
  /// evidence capable of flagging previously unseen attacks.
  kSpecDeviation,
  /// A packet that failed to parse as its protocol.
  kMalformed,
  /// A machine definition fired multiple predicates at once (§4.1 wants
  /// them mutually disjoint) — a bug in the ruleset, surfaced loudly.
  kNondeterminism,
  /// The engine itself is unhealthy: the sharded coordinator's watchdog
  /// detected a worker that stopped draining its ring (DESIGN.md §13).
  /// About the monitor, not the traffic — excluded from detection-equality
  /// comparisons and from the soak harness's alerts_total.
  kEngineHealth,
  /// A per-endpoint behavior profile's weighted anomaly score crossed the
  /// alert threshold (DESIGN.md §16) — protocol-legal traffic whose *shape*
  /// is hostile (SPIT bursts, registration cracking, toll-fraud fan-out).
  /// The detail carries the score and its per-feature breakdown; the state
  /// field carries the severity tier.
  kBehavior,
};

std::string_view AlertKindName(AlertKind kind);

/// Classification string of the watchdog's stalled-worker EngineHealth
/// alert (tests and the soak harness match on it).
inline constexpr std::string_view kEngineWorkerStall = "engine worker stall";

/// Classification of the stalled-PRODUCER variant: the worker is alive but
/// merge-blocked on an ingest lane whose producer stopped advancing its
/// frontier (DESIGN.md §15) — a wedged producer is not a wedged worker.
inline constexpr std::string_view kEngineProducerStall =
    "engine producer stall";

struct Alert {
  sim::Time when;
  AlertKind kind = AlertKind::kSpecDeviation;
  /// Attack classification, e.g. "BYE DoS", "INVITE flood"; for deviations a
  /// description of the unexpected event.
  std::string classification;
  std::string machine;   // EFSM instance that raised it
  std::string group;     // call id or per-destination key
  std::string state;     // machine state at the time
  std::string detail;    // free-form evidence (addresses, counters)

  /// The transition that fired the alert, e.g. "SIP: 'BYE' InCall -> Attack".
  std::string trigger;
  /// The call's flight-recorder tail at emission time (≤ 32 rendered
  /// records, oldest first) — the "why": every EFSM transition, sync
  /// channel send, fact-base change and prior alert of this call.
  std::vector<std::string> provenance;

  std::string ToString() const;
  /// Multi-line report: ToString(), the trigger, then provenance indented.
  std::string ProvenanceToString() const;
};

}  // namespace vids::ids
