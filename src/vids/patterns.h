// Attack-pattern EFSMs — the vIDS Attack Scenario base (paper §5, §6).
//
// Each known attack of the threat model (§3) is a small machine whose
// attack state is annotated; reaching it is a signature match. Pattern
// machines never report deviations: for them, "no transition" just means
// "not this attack".
//
//   INVITE flooding  (Fig. 4)  — per destination AOR, counter + timer T1
//   media spamming   (Fig. 6)  — per media endpoint, SSRC/seq/ts gap rule
//   RTP flooding     (§3.2)    — per media endpoint, rate counter
//   CANCEL DoS       (§3.1)    — per call, CANCEL from a foreign source
//   call hijacking   (§3.1)    — per call, in-dialog INVITE with alien tag
//   DRDoS reflection (§3.1)    — per victim host, unsolicited responses
//
// (BYE DoS and toll fraud live in the RTP *specification* machine because
// they need the cross-protocol δ synchronization — see spec_machines.h.)
#pragma once

#include "efsm/machine.h"
#include "vids/config.h"

namespace vids::ids {

inline constexpr std::string_view kAttackInviteFlood = "INVITE flood";
/// Extension beyond the paper: RTP continuing after the stream's own RTCP
/// BYE — either a spoofed RTCP BYE (the media-plane twin of the BYE DoS)
/// or a sender violating its own control protocol.
inline constexpr std::string_view kAttackGhostMedia = "media after RTCP BYE";
inline constexpr std::string_view kAttackMediaSpam = "media spamming";
inline constexpr std::string_view kAttackRtpFlood = "RTP flood";
inline constexpr std::string_view kAttackCancelDos = "CANCEL DoS";
inline constexpr std::string_view kAttackHijack = "call hijacking";
inline constexpr std::string_view kAttackDrdos = "DRDoS reflection";

efsm::MachineDef BuildInviteFloodMachine(const DetectionConfig& config);
efsm::MachineDef BuildMediaSpamMachine(const DetectionConfig& config);
efsm::MachineDef BuildRtcpByeMachine(const DetectionConfig& config);
efsm::MachineDef BuildRtpFloodMachine(const DetectionConfig& config);
efsm::MachineDef BuildCancelDosMachine(const DetectionConfig& config);
efsm::MachineDef BuildHijackMachine(const DetectionConfig& config);
efsm::MachineDef BuildDrdosMachine(const DetectionConfig& config);

/// The full scenario base, in one bundle the fact base instantiates from.
struct AttackScenarioBase {
  efsm::MachineDef invite_flood;
  efsm::MachineDef media_spam;
  efsm::MachineDef rtp_flood;
  efsm::MachineDef cancel_dos;
  efsm::MachineDef hijack;
  efsm::MachineDef drdos;
  efsm::MachineDef rtcp_bye;

  explicit AttackScenarioBase(const DetectionConfig& config)
      : invite_flood(BuildInviteFloodMachine(config)),
        media_spam(BuildMediaSpamMachine(config)),
        rtp_flood(BuildRtpFloodMachine(config)),
        cancel_dos(BuildCancelDosMachine(config)),
        hijack(BuildHijackMachine(config)),
        drdos(BuildDrdosMachine(config)),
        rtcp_bye(BuildRtcpByeMachine(config)) {}
};

}  // namespace vids::ids
