#include "vids/trace.h"

#include <sstream>

#include "common/strings.h"

namespace vids::ids {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string ToHex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto byte = static_cast<uint8_t>(c);
    out += kHexDigits[byte >> 4];
    out += kHexDigits[byte & 0xF];
  }
  return out;
}

/// Decodes a lowercase-hex payload. On failure returns nullopt and names
/// the defect in `*why` ("odd-length …" vs "non-hex byte …").
std::optional<std::string> FromHex(std::string_view hex, std::string* why) {
  if (hex.size() % 2 != 0) {
    if (why != nullptr) {
      *why = "odd-length hex payload (" + std::to_string(hex.size()) +
             " nibbles)";
    }
    return std::nullopt;
  }
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      if (why != nullptr) {
        *why = "non-hex byte in payload at position " + std::to_string(i);
      }
      return std::nullopt;
    }
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

/// Largest UDP payload an IPv4 datagram can carry (65535 - 20 - 8); the
/// bound the padding-consistency check enforces.
constexpr uint64_t kMaxUdpPayload = 65507;

std::string_view KindName(net::PayloadKind kind) {
  switch (kind) {
    case net::PayloadKind::kSip: return "sip";
    case net::PayloadKind::kRtp: return "rtp";
    case net::PayloadKind::kOther: return "other";
  }
  return "other";
}

std::optional<net::PayloadKind> ParseKind(std::string_view name) {
  if (name == "sip") return net::PayloadKind::kSip;
  if (name == "rtp") return net::PayloadKind::kRtp;
  if (name == "other") return net::PayloadKind::kOther;
  return std::nullopt;
}

}  // namespace

void TraceLog::Append(sim::Time when, const net::Datagram& dgram,
                      bool from_outside) {
  records_.push_back(TraceRecord{when, from_outside, dgram});
}

net::InlineTap::Monitor TraceLog::MakeRecorder(sim::Scheduler& scheduler) {
  return [this, &scheduler](const net::Datagram& dgram, bool from_outside) {
    Append(scheduler.Now(), dgram, from_outside);
  };
}

std::string TraceLog::Serialize() const {
  std::ostringstream out;
  for (const auto& record : records_) {
    out << record.when.nanos() << ' '
        << (record.from_outside ? "in" : "out") << ' '
        << record.dgram.src.ToString() << ' ' << record.dgram.dst.ToString()
        << ' ' << KindName(record.dgram.kind) << ' '
        << record.dgram.padding_bytes << ' ' << ToHex(record.dgram.payload)
        << '\n';
  }
  return out.str();
}

std::optional<TraceLog> TraceLog::Parse(std::string_view text,
                                        std::string* error) {
  TraceLog log;
  size_t pos = 0;
  uint64_t line_no = 0;
  const auto fail = [&](std::string why) -> std::optional<TraceLog> {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + std::move(why);
    }
    return std::nullopt;
  };
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = common::Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const auto fields = common::Split(line, ' ');
    if (fields.size() != 7) {
      return fail("expected 7 fields, got " + std::to_string(fields.size()));
    }
    TraceRecord record;
    // ParseInt (from_chars) already rejects values that overflow int64, but
    // accepts a leading '-'; a negative instant is never valid on the sim
    // clock, so reject it here rather than scheduling a pre-epoch packet.
    const auto nanos = common::ParseInt<int64_t>(fields[0]);
    if (!nanos) {
      return fail("bad nanosecond timestamp '" + std::string(fields[0]) +
                  "' (not an integer, or overflows int64)");
    }
    if (*nanos < 0) {
      return fail("negative nanosecond timestamp " + std::string(fields[0]));
    }
    if (fields[1] != "in" && fields[1] != "out") {
      return fail("bad direction '" + std::string(fields[1]) +
                  "' (want in|out)");
    }
    const auto src = net::Endpoint::Parse(fields[2]);
    if (!src) return fail("bad src endpoint '" + std::string(fields[2]) + "'");
    const auto dst = net::Endpoint::Parse(fields[3]);
    if (!dst) return fail("bad dst endpoint '" + std::string(fields[3]) + "'");
    const auto kind = ParseKind(fields[4]);
    if (!kind) {
      return fail("bad payload kind '" + std::string(fields[4]) +
                  "' (want sip|rtp|other)");
    }
    const auto padding = common::ParseInt<uint32_t>(fields[5]);
    if (!padding) {
      return fail("bad padding-byte count '" + std::string(fields[5]) + "'");
    }
    std::string hex_why;
    auto payload = FromHex(fields[6], &hex_why);
    if (!payload) return fail(std::move(hex_why));
    // Wire-size consistency: payload + padding must still fit one UDP/IPv4
    // datagram, or the recorded packet could never have existed on the wire
    // (and WireBytes() would silently overstate link occupancy on replay).
    if (payload->size() + uint64_t{*padding} > kMaxUdpPayload) {
      return fail("padding " + std::string(fields[5]) + " + payload " +
                  std::to_string(payload->size()) +
                  " bytes exceeds the 65507-byte UDP payload bound");
    }
    record.when = sim::Time::FromNanos(*nanos);
    // Timestamps must be non-decreasing: replay schedules each record at its
    // recorded time, and a rewind would silently reorder the packet stream.
    if (!log.records_.empty() && record.when < log.records_.back().when) {
      return fail("timestamp rewind (" + std::string(fields[0]) +
                  " < previous record's " +
                  std::to_string(log.records_.back().when.nanos()) + ")");
    }
    record.from_outside = fields[1] == "in";
    record.dgram.src = *src;
    record.dgram.dst = *dst;
    record.dgram.kind = *kind;
    record.dgram.padding_bytes = *padding;
    record.dgram.payload = std::move(*payload);
    log.records_.push_back(std::move(record));
  }
  if (error != nullptr) error->clear();
  return log;
}

void TraceLog::ReplayInto(Vids& vids, sim::Scheduler& scheduler,
                          std::optional<sim::Time> until) const {
  for (const auto& record : records_) {
    scheduler.ScheduleAt(record.when, [&vids, &record] {
      vids.Inspect(record.dgram, record.from_outside);
    });
  }
  if (until.has_value()) {
    scheduler.RunUntil(*until);
  } else {
    scheduler.Run();
  }
}

}  // namespace vids::ids
