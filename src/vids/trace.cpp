#include "vids/trace.h"

#include <sstream>

#include "common/strings.h"

namespace vids::ids {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string ToHex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto byte = static_cast<uint8_t>(c);
    out += kHexDigits[byte >> 4];
    out += kHexDigits[byte & 0xF];
  }
  return out;
}

std::optional<std::string> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

std::string_view KindName(net::PayloadKind kind) {
  switch (kind) {
    case net::PayloadKind::kSip: return "sip";
    case net::PayloadKind::kRtp: return "rtp";
    case net::PayloadKind::kOther: return "other";
  }
  return "other";
}

std::optional<net::PayloadKind> ParseKind(std::string_view name) {
  if (name == "sip") return net::PayloadKind::kSip;
  if (name == "rtp") return net::PayloadKind::kRtp;
  if (name == "other") return net::PayloadKind::kOther;
  return std::nullopt;
}

}  // namespace

void TraceLog::Append(sim::Time when, const net::Datagram& dgram,
                      bool from_outside) {
  records_.push_back(TraceRecord{when, from_outside, dgram});
}

net::InlineTap::Monitor TraceLog::MakeRecorder(sim::Scheduler& scheduler) {
  return [this, &scheduler](const net::Datagram& dgram, bool from_outside) {
    Append(scheduler.Now(), dgram, from_outside);
  };
}

std::string TraceLog::Serialize() const {
  std::ostringstream out;
  for (const auto& record : records_) {
    out << record.when.nanos() << ' '
        << (record.from_outside ? "in" : "out") << ' '
        << record.dgram.src.ToString() << ' ' << record.dgram.dst.ToString()
        << ' ' << KindName(record.dgram.kind) << ' '
        << record.dgram.padding_bytes << ' ' << ToHex(record.dgram.payload)
        << '\n';
  }
  return out.str();
}

std::optional<TraceLog> TraceLog::Parse(std::string_view text) {
  TraceLog log;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = common::Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;
    const auto fields = common::Split(line, ' ');
    if (fields.size() != 7) return std::nullopt;
    TraceRecord record;
    const auto nanos = common::ParseInt<int64_t>(fields[0]);
    const auto src = net::Endpoint::Parse(fields[2]);
    const auto dst = net::Endpoint::Parse(fields[3]);
    const auto kind = ParseKind(fields[4]);
    const auto padding = common::ParseInt<uint32_t>(fields[5]);
    const auto payload = FromHex(fields[6]);
    if (!nanos || !src || !dst || !kind || !padding || !payload ||
        (fields[1] != "in" && fields[1] != "out")) {
      return std::nullopt;
    }
    record.when = sim::Time::FromNanos(*nanos);
    // Timestamps must be non-decreasing: replay schedules each record at its
    // recorded time, and a rewind would silently reorder the packet stream.
    if (!log.records_.empty() && record.when < log.records_.back().when) {
      return std::nullopt;
    }
    record.from_outside = fields[1] == "in";
    record.dgram.src = *src;
    record.dgram.dst = *dst;
    record.dgram.kind = *kind;
    record.dgram.padding_bytes = *padding;
    record.dgram.payload = std::move(*payload);
    log.records_.push_back(std::move(record));
  }
  return log;
}

void TraceLog::ReplayInto(Vids& vids, sim::Scheduler& scheduler,
                          std::optional<sim::Time> until) const {
  for (const auto& record : records_) {
    scheduler.ScheduleAt(record.when, [&vids, &record] {
      vids.Inspect(record.dgram, record.from_outside);
    });
  }
  if (until.has_value()) {
    scheduler.RunUntil(*until);
  } else {
    scheduler.Run();
  }
}

}  // namespace vids::ids
