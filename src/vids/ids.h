// vIDS — the VoIP intrusion detection system (paper Fig. 3).
//
// Composition of the architecture's components:
//   Packet Classifier      → classifier.h       (packets → typed events)
//   Event Distributor      → Vids::Inspect      (events → machine groups)
//   Call State Fact Base   → fact_base.h        (per-call/per-key groups)
//   Attack Scenario base   → patterns.h         (known-attack EFSMs)
//   Analysis Engine        → Vids's Observer implementation (alerts)
//
// Deployment: construct a Vids, then install MakeInspector() on the
// net::InlineTap sitting between the edge router and the protected network.
// Detection is passive — vIDS raises alerts and notifies administrators; it
// never drops traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/inline_tap.h"
#include "vids/alert.h"
#include "vids/classifier.h"
#include "vids/config.h"
#include "vids/fact_base.h"

namespace vids::ids {

namespace detail {

/// Alert-deduplication signature (group, machine, classification). The view
/// variant lets the per-packet suppression pre-check probe the table with
/// borrowed strings — no concatenated key, no allocation.
struct AlertSig {
  std::string group;
  std::string machine;
  std::string classification;
};
struct AlertSigView {
  std::string_view group;
  std::string_view machine;
  std::string_view classification;
};
struct AlertSigHash {
  using is_transparent = void;
  static size_t Mix(std::string_view group, std::string_view machine,
                    std::string_view classification) {
    const std::hash<std::string_view> h;
    size_t seed = h(group);
    seed ^= h(machine) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    seed ^=
        h(classification) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    return seed;
  }
  size_t operator()(const AlertSig& s) const {
    return Mix(s.group, s.machine, s.classification);
  }
  size_t operator()(const AlertSigView& s) const {
    return Mix(s.group, s.machine, s.classification);
  }
};
struct AlertSigEq {
  using is_transparent = void;
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a.group == b.group && a.machine == b.machine &&
           a.classification == b.classification;
  }
};

}  // namespace detail

class Vids : public efsm::Observer {
 public:
  /// Snapshot of the IDS's own counters (all live in metrics(); this struct
  /// is the stable convenience view).
  struct Stats {
    uint64_t packets = 0;
    uint64_t sip_packets = 0;
    uint64_t rtp_packets = 0;
    uint64_t rtcp_packets = 0;
    uint64_t unknown_packets = 0;
    uint64_t orphan_rtp = 0;   // media matching no monitored call
    uint64_t transitions = 0;  // EFSM transitions executed
    uint64_t alerts_suppressed = 0;  // deduplicated repeats
  };

  Vids(sim::Scheduler& scheduler, DetectionConfig detection = {},
       CostModel cost = {});

  /// Analyzes one packet; returns the simulated CPU cost to charge. This is
  /// the Event Distributor: it classifies, routes events to the fact base's
  /// machine groups, feeds the per-destination patterns and maintains the
  /// media-endpoint index.
  sim::Duration Inspect(const net::Datagram& dgram, bool from_outside);

  /// Adapter for net::InlineTap.
  net::InlineTap::Inspector MakeInspector() {
    return [this](const net::Datagram& dgram, bool from_outside) {
      return Inspect(dgram, from_outside);
    };
  }

  const std::vector<Alert>& alerts() const { return alerts_; }
  /// Alerts of a given kind / classification.
  size_t CountAlerts(AlertKind kind) const;
  size_t CountAlerts(std::string_view classification) const;
  /// Registers a callback invoked for every (non-suppressed) alert.
  void set_alert_callback(std::function<void(const Alert&)> cb) {
    alert_callback_ = std::move(cb);
  }
  /// Caps the retained alert history (0 = unlimited, the default). Long
  /// soak deployments set a cap and consume alerts via the callback; when
  /// the cap is exceeded the oldest half of the history is dropped, so the
  /// alert log cannot grow without bound. CountAlerts() then counts only
  /// the retained tail.
  void set_max_retained_alerts(size_t max) { max_retained_alerts_ = max; }

  /// Live alert-dedup signatures (also exported as the "vids.alert_sigs"
  /// gauge). Bounded: signatures expire past the dedup window and die with
  /// their swept group.
  size_t alert_sig_count() const { return recent_alerts_.size(); }

  /// Optional trace of every EFSM transition (group, machine, label) — the
  /// live view of the state-transition analysis; used by the examples.
  using TransitionTrace = std::function<void(
      const efsm::MachineInstance&, const efsm::Transition&)>;
  void set_transition_trace(TransitionTrace trace) {
    transition_trace_ = std::move(trace);
  }

  /// Cross-call aggregate feeds: the detectors whose counting key spans
  /// calls and therefore spans shards in the sharded engine — the DRDoS /
  /// INVITE-flood window counters and the entity-keyed behavior profiles
  /// (a caller's calls scatter across shards with their Call-ID hashes).
  enum class AggregateKind : uint8_t {
    kUnsolicitedResponse,  // DRDoS reflection, keyed by victim (dst) IP
    kInviteRequest,        // INVITE flood, keyed by destination AOR
    kBehaviorCallStart,    // initial INVITE, keyed by caller AOR (From)
    kBehaviorCallEnd,      // BYE request, keyed by caller AOR (From)
    kBehaviorRegFailure,   // REGISTER 401/403/407, keyed by target AOR (To)
    kBehaviorRegSuccess,   // REGISTER 2xx, keyed by target AOR (To)
  };
  /// When an aggregate hook is installed the DRDoS / INVITE-flood window
  /// counters and the local behavior engine are NOT fed; the hook receives
  /// every event that would have fed them instead (key = dest AOR for
  /// kInviteRequest, dotted victim IP — packet.dst.ip, always present —
  /// for kUnsolicitedResponse, the profiled entity AOR for the behavior
  /// kinds). ShardedIds
  /// installs one on every shard and replays the events into coordinator-
  /// side window counters and its own BehaviorEngine, so the aggregate
  /// detectors see the global event stream regardless of how calls are
  /// partitioned. All other detection (per-call, per-media-endpoint) is
  /// untouched.
  using AggregateHook = std::function<void(
      AggregateKind, std::string_view key, const ClassifiedPacket& packet)>;
  void set_aggregate_hook(AggregateHook hook) {
    aggregate_hook_ = std::move(hook);
  }

  Stats stats() const;
  CallStateFactBase& fact_base() { return fact_base_; }
  const CallStateFactBase& fact_base() const { return fact_base_; }
  const DetectionConfig& detection() const { return detection_; }
  /// The behavioral anomaly layer (DESIGN.md §16). Fed inline from the
  /// inspect path unless an aggregate hook forwards the events upstream;
  /// swept on the fact base's sweep cadence.
  behavior::BehaviorEngine& behavior() { return behavior_; }
  const behavior::BehaviorEngine& behavior() const { return behavior_; }

  /// The IDS's own metrics registry: "vids.*" event-distributor and fact
  /// base counters, "efsm.*" engine counters, lazily-created per-
  /// classification "alerts.*" counters. Everything here is derived from
  /// the inspected packet stream, so an offline replay of a capture
  /// reproduces the counter values exactly (the wall-clock histograms are
  /// the one exception — exclude them when comparing snapshots).
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

  // --- efsm::Observer (the Analysis Engine) ---
  void OnTransition(const efsm::MachineInstance&, const efsm::Transition&,
                    const efsm::Event&) override;
  void OnAttackState(const efsm::MachineInstance&, efsm::StateId,
                     const efsm::Event&) override;
  void OnDeviation(const efsm::MachineInstance&, const efsm::Event&) override;
  void OnNondeterminism(const efsm::MachineInstance&, const efsm::Event&,
                        size_t enabled_count) override;

 private:
  void HandleSip(const ClassifiedPacket& packet);
  /// Routes the packet's behavior-profile events (call start/end, REGISTER
  /// finals) into the local engine, or up the aggregate hook when one is
  /// installed.
  void FeedBehavior(const ClassifiedPacket& packet, bool is_response);
  void HandleRtp(const ClassifiedPacket& packet);
  void HandleRtcp(const ClassifiedPacket& packet);
  void RefreshMediaIndex(efsm::MachineGroup& group,
                         const std::string& call_id);
  void RaiseAlert(Alert alert);
  /// True when an identical alert fired within the dedup window. Probes the
  /// signature table without building any string — attack self-loops call
  /// this per packet, so the suppressed path must stay allocation-free.
  bool IsDuplicateAlert(std::string_view group, std::string_view machine,
                        std::string_view classification, sim::Time when) const;
  /// Human classification of a specification deviation from its context.
  /// Returns a literal for the common cases (so the suppression pre-check
  /// stays allocation-free); composed descriptions are built in `scratch`.
  static std::string_view DescribeDeviation(
      const efsm::MachineInstance& machine, const efsm::Event& event,
      std::string& scratch);

  /// Builds the trigger + provenance view for an alert raised by `machine`'s
  /// group and stamps a kAlert record into the group's flight recorder.
  void AttachProvenance(Alert& alert, const efsm::MachineInstance& machine);

  /// Sweep-driven upkeep of the dedup table: drops signatures older than
  /// the dedup window and signatures whose machine group was reclaimed by
  /// the sweep. Keeps recent_alerts_ bounded by the alert rate of the last
  /// window instead of the deployment lifetime.
  void PruneAlertSigs(sim::Time now,
                      const std::vector<std::string>& reclaimed_groups);

  sim::Scheduler& scheduler_;
  DetectionConfig detection_;
  CostModel cost_;
  PacketClassifier classifier_;
  // Declared before fact_base_: the fact base registers its metrics here.
  obs::MetricsRegistry registry_;
  CallStateFactBase fact_base_;
  behavior::BehaviorEngine behavior_;
  // Cached slots into registry_ — hot-path updates are plain increments.
  obs::Counter* m_packets_;
  obs::Counter* m_sip_packets_;
  obs::Counter* m_rtp_packets_;
  obs::Counter* m_rtcp_packets_;
  obs::Counter* m_unknown_packets_;
  obs::Counter* m_orphan_rtp_;
  obs::Counter* m_transitions_;
  obs::Counter* m_alerts_;
  obs::Counter* m_alerts_suppressed_;
  obs::Gauge* m_alert_sigs_;
  obs::Gauge* m_behavior_profiles_;
  // The transition that fired most recently — the engine reports
  // OnTransition immediately before OnAttackState, so this names an
  // attack alert's trigger without any allocation on the transition path.
  const efsm::Transition* last_transition_ = nullptr;
  const efsm::MachineInstance* last_transition_machine_ = nullptr;
  std::vector<Alert> alerts_;
  size_t max_retained_alerts_ = 0;  // 0 = keep everything
  std::function<void(const Alert&)> alert_callback_;
  TransitionTrace transition_trace_;
  AggregateHook aggregate_hook_;
  /// Dedup: last alert time per (group, machine, classification). Bounded:
  /// PruneAlertSigs (driven by the fact-base sweep) expires stale entries
  /// and evicts those of reclaimed groups.
  std::unordered_map<detail::AlertSig, sim::Time, detail::AlertSigHash,
                     detail::AlertSigEq>
      recent_alerts_;
};

}  // namespace vids::ids
