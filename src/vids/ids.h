// vIDS — the VoIP intrusion detection system (paper Fig. 3).
//
// Composition of the architecture's components:
//   Packet Classifier      → classifier.h       (packets → typed events)
//   Event Distributor      → Vids::Inspect      (events → machine groups)
//   Call State Fact Base   → fact_base.h        (per-call/per-key groups)
//   Attack Scenario base   → patterns.h         (known-attack EFSMs)
//   Analysis Engine        → Vids's Observer implementation (alerts)
//
// Deployment: construct a Vids, then install MakeInspector() on the
// net::InlineTap sitting between the edge router and the protected network.
// Detection is passive — vIDS raises alerts and notifies administrators; it
// never drops traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/inline_tap.h"
#include "vids/alert.h"
#include "vids/classifier.h"
#include "vids/config.h"
#include "vids/fact_base.h"

namespace vids::ids {

class Vids : public efsm::Observer {
 public:
  struct Stats {
    uint64_t packets = 0;
    uint64_t sip_packets = 0;
    uint64_t rtp_packets = 0;
    uint64_t rtcp_packets = 0;
    uint64_t unknown_packets = 0;
    uint64_t orphan_rtp = 0;   // media matching no monitored call
    uint64_t transitions = 0;  // EFSM transitions executed
    uint64_t alerts_suppressed = 0;  // deduplicated repeats
  };

  Vids(sim::Scheduler& scheduler, DetectionConfig detection = {},
       CostModel cost = {});

  /// Analyzes one packet; returns the simulated CPU cost to charge. This is
  /// the Event Distributor: it classifies, routes events to the fact base's
  /// machine groups, feeds the per-destination patterns and maintains the
  /// media-endpoint index.
  sim::Duration Inspect(const net::Datagram& dgram, bool from_outside);

  /// Adapter for net::InlineTap.
  net::InlineTap::Inspector MakeInspector() {
    return [this](const net::Datagram& dgram, bool from_outside) {
      return Inspect(dgram, from_outside);
    };
  }

  const std::vector<Alert>& alerts() const { return alerts_; }
  /// Alerts of a given kind / classification.
  size_t CountAlerts(AlertKind kind) const;
  size_t CountAlerts(std::string_view classification) const;
  /// Registers a callback invoked for every (non-suppressed) alert.
  void set_alert_callback(std::function<void(const Alert&)> cb) {
    alert_callback_ = std::move(cb);
  }

  /// Optional trace of every EFSM transition (group, machine, label) — the
  /// live view of the state-transition analysis; used by the examples.
  using TransitionTrace = std::function<void(
      const efsm::MachineInstance&, const efsm::Transition&)>;
  void set_transition_trace(TransitionTrace trace) {
    transition_trace_ = std::move(trace);
  }

  const Stats& stats() const { return stats_; }
  CallStateFactBase& fact_base() { return fact_base_; }
  const CallStateFactBase& fact_base() const { return fact_base_; }
  const DetectionConfig& detection() const { return detection_; }

  // --- efsm::Observer (the Analysis Engine) ---
  void OnTransition(const efsm::MachineInstance&, const efsm::Transition&,
                    const efsm::Event&) override;
  void OnAttackState(const efsm::MachineInstance&, efsm::StateId,
                     const efsm::Event&) override;
  void OnDeviation(const efsm::MachineInstance&, const efsm::Event&) override;
  void OnNondeterminism(const efsm::MachineInstance&, const efsm::Event&,
                        size_t enabled_count) override;

 private:
  void HandleSip(const ClassifiedPacket& packet);
  void HandleRtp(const ClassifiedPacket& packet);
  void HandleRtcp(const ClassifiedPacket& packet);
  void RefreshMediaIndex(efsm::MachineGroup& group,
                         const std::string& call_id);
  void RaiseAlert(Alert alert);
  /// Human classification of a specification deviation from its context.
  static std::string DescribeDeviation(const efsm::MachineInstance& machine,
                                       const efsm::Event& event);

  sim::Scheduler& scheduler_;
  DetectionConfig detection_;
  CostModel cost_;
  PacketClassifier classifier_;
  CallStateFactBase fact_base_;
  Stats stats_;
  std::vector<Alert> alerts_;
  std::function<void(const Alert&)> alert_callback_;
  TransitionTrace transition_trace_;
  /// Dedup: last alert time per (group, machine, classification).
  std::map<std::string, sim::Time> recent_alerts_;
};

}  // namespace vids::ids
