// The paper's evaluation testbed (Fig. 7), as a reusable fixture.
//
// Two enterprise networks joined across an Internet cloud:
//
//   [UA a0..aN, proxy A]--hub A--router A--DS1---+
//                                                (cloud: 50 ms, 0.42% loss)
//   [UA b0..bN, proxy B]--hub B--TAP--router B--DS1-+         ^
//                                 `-- vIDS inline             attacker
//
// The vIDS tap sits between network B's edge router and hub, seeing all
// traffic crossing into or out of B. An attacker host lives on the outside.
// The workload reproduces §7.1: network-A UAs call network-B UAs with
// random arrivals and exponentially distributed holding times, G.729 voice
// with VAD, 500-byte SIP messages.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attacks/eavesdropper.h"
#include "attacks/toolkit.h"
#include "net/forwarder.h"
#include "obs/metrics.h"
#include "net/host.h"
#include "net/inline_tap.h"
#include "net/network.h"
#include "rtp/session.h"
#include "sip/proxy.h"
#include "sip/user_agent.h"
#include "vids/ids.h"

namespace vids::testbed {

struct TestbedConfig {
  uint64_t seed = 42;
  int uas_per_network = 10;

  /// Install the vIDS inspector on the tap (false = the paper's
  /// "without vIDS" arm: same topology, plain forwarding).
  bool vids_enabled = true;
  ids::DetectionConfig detection{};
  ids::CostModel cost{};

  rtp::CodecProfile codec = rtp::G729();
  rtp::TalkspurtModel talkspurt{};
  /// Callee ringing time before the 200 OK.
  sim::Duration answer_delay = sim::Duration::Millis(500);
  /// Digest authentication on REGISTER: every UA gets the password
  /// "pw-<user>" and the registrars challenge (§3.1's observation — some
  /// attacks persist regardless — is demonstrated against this).
  bool enable_registration_auth = false;
  sip::TimerConfig sip_timers{};
  /// Record a receiver QoS sample every N RTP packets (Fig. 10 series).
  uint32_t qos_sample_every = 50;

  net::LinkConfig lan = net::FastEthernet();
  net::LinkConfig wan = net::Ds1();
  net::LinkConfig cloud = net::InternetCloud();
};

struct WorkloadConfig {
  /// Mean pause between a UA's calls (exponential).
  sim::Duration mean_intercall = sim::Duration::Seconds(150);
  /// Mean call holding time (exponential).
  sim::Duration mean_duration = sim::Duration::Seconds(90);
};

/// One IP phone: host + SIP user agent + per-call RTP sessions.
class UaNode {
 public:
  UaNode(sim::Scheduler& scheduler, net::Host& host,
         sip::UserAgent::Config ua_config, rtp::CodecProfile codec,
         rtp::TalkspurtModel talkspurt, uint32_t qos_sample_every,
         common::Stream& rng, obs::MetricsRegistry* metrics = nullptr);

  sip::UserAgent& ua() { return ua_; }
  net::Host& host() { return host_; }

  /// Receiver-side QoS over all of this UA's finished and active sessions.
  std::vector<rtp::QosSample> AllQosSamples() const;
  rtp::ReceiverStats AggregateReceiverStats() const;

 private:
  sim::Scheduler& scheduler_;
  net::Host& host_;
  rtp::CodecProfile codec_;
  rtp::TalkspurtModel talkspurt_;
  uint32_t qos_sample_every_;
  common::Stream rng_;
  obs::MetricsRegistry* metrics_;  // environment registry; may be null
  sip::UserAgent ua_;
  std::map<std::string, std::unique_ptr<rtp::MediaSession>> media_;
  // Retired sessions' stats are folded here so history survives teardown.
  rtp::ReceiverStats retired_stats_;
  std::vector<rtp::QosSample> retired_samples_;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  ~Testbed();

  /// Starts §7.1's random call workload: every network-A UA independently
  /// places calls to random network-B UAs.
  void StartWorkload(WorkloadConfig workload);

  /// Attaches an additional passive monitor to the tap's mirror port (the
  /// built-in eavesdropper keeps seeing traffic too). Used to run baseline
  /// IDSs side by side for the ablation study.
  void AddMonitor(net::InlineTap::Monitor monitor) {
    extra_monitors_.push_back(std::move(monitor));
  }

  /// Advances simulated time to `at`.
  void RunUntil(sim::Time at) { scheduler_.RunUntil(at); }
  void RunFor(sim::Duration d) { scheduler_.RunUntil(scheduler_.Now() + d); }

  sim::Scheduler& scheduler() { return scheduler_; }
  /// Environment-side metrics (sim.*, sip.tx.*, rtp.*). Deliberately a
  /// separate registry from Vids::metrics(): the IDS registry stays a pure
  /// function of the inspected packet stream so trace replay reproduces it.
  obs::MetricsRegistry& metrics() { return metrics_; }
  net::Network& network() { return *network_; }
  ids::Vids* vids() { return vids_.get(); }
  net::InlineTap& tap() { return *tap_; }
  net::Host& attacker_host() { return *attacker_host_; }
  attacks::AttackToolkit& attacker() { return *attacker_; }
  attacks::Eavesdropper& eavesdropper() { return eavesdropper_; }

  std::vector<std::unique_ptr<UaNode>>& uas_a() { return uas_a_; }
  std::vector<std::unique_ptr<UaNode>>& uas_b() { return uas_b_; }
  sip::Proxy& proxy_a() { return *proxy_a_; }
  sip::Proxy& proxy_b() { return *proxy_b_; }
  net::Endpoint proxy_a_endpoint() const;
  net::Endpoint proxy_b_endpoint() const;

  const TestbedConfig& config() const { return config_; }

  /// All completed call records across network-A callers.
  std::vector<sip::CallRecord> CompletedCalls() const;

 private:
  struct Enterprise {
    net::Forwarder* router = nullptr;
    net::Forwarder* hub = nullptr;
    net::Host* proxy_host = nullptr;
  };

  void BuildTopology();
  UaNode& AddUa(Enterprise& enterprise, const std::string& name,
                net::IpAddress ip, const std::string& domain,
                net::Endpoint proxy, std::vector<std::unique_ptr<UaNode>>& out);

  TestbedConfig config_;
  obs::MetricsRegistry metrics_;  // declared before users so it dies last
  sim::Scheduler scheduler_;
  common::Stream rng_;
  std::unique_ptr<net::Network> network_;

  Enterprise a_;
  Enterprise b_;
  net::Forwarder* internet_ = nullptr;
  net::InlineTap* tap_ = nullptr;
  std::unique_ptr<ids::Vids> vids_;
  attacks::Eavesdropper eavesdropper_;

  std::unique_ptr<sip::Proxy> proxy_a_;
  std::unique_ptr<sip::Proxy> proxy_b_;
  std::vector<std::unique_ptr<UaNode>> uas_a_;
  std::vector<std::unique_ptr<UaNode>> uas_b_;

  net::Host* attacker_host_ = nullptr;
  std::unique_ptr<attacks::AttackToolkit> attacker_;
  std::vector<net::InlineTap::Monitor> extra_monitors_;
};

}  // namespace vids::testbed
