#include "testbed/testbed.h"

#include "common/log.h"

namespace vids::testbed {

namespace {
constexpr const char* kDomainA = "a.example.com";
constexpr const char* kDomainB = "b.example.com";
}  // namespace

// ------------------------------------------------------------- UaNode

UaNode::UaNode(sim::Scheduler& scheduler, net::Host& host,
               sip::UserAgent::Config ua_config, rtp::CodecProfile codec,
               rtp::TalkspurtModel talkspurt, uint32_t qos_sample_every,
               common::Stream& rng, obs::MetricsRegistry* metrics)
    : scheduler_(scheduler),
      host_(host),
      codec_(std::move(codec)),
      talkspurt_(talkspurt),
      qos_sample_every_(qos_sample_every),
      rng_(rng.Fork(std::string(host.name()) + ":ua")),
      metrics_(metrics),
      ua_(scheduler, host, std::move(ua_config)) {
  if (metrics_ != nullptr) ua_.transaction_layer().AttachMetrics(*metrics_);
  ua_.set_media_start([this](const sip::MediaSpec& spec) {
    rtp::MediaSession::Config media_config;
    media_config.local_port = spec.local_rtp.port;
    media_config.remote = spec.remote_rtp;
    media_config.codec = codec_;
    media_config.talkspurt = talkspurt_;
    media_config.sample_every = qos_sample_every_;
    auto session = std::make_unique<rtp::MediaSession>(
        scheduler_, host_, media_config, rng_);
    if (metrics_ != nullptr) session->AttachMetrics(*metrics_);
    session->Start();
    media_[spec.call_id] = std::move(session);
  });
  ua_.set_media_stop([this](const std::string& call_id) {
    const auto it = media_.find(call_id);
    if (it == media_.end()) return;
    // Fold the session's receive-side history into the retired aggregate.
    const auto& stats = it->second->receiver_stats();
    retired_stats_.packets_received += stats.packets_received;
    retired_stats_.packets_lost += stats.packets_lost;
    retired_stats_.packets_misordered += stats.packets_misordered;
    retired_stats_.ssrc_mismatches += stats.ssrc_mismatches;
    retired_stats_.total_delay_seconds += stats.total_delay_seconds;
    retired_stats_.max_delay_seconds =
        std::max(retired_stats_.max_delay_seconds, stats.max_delay_seconds);
    const auto& samples = it->second->samples();
    retired_samples_.insert(retired_samples_.end(), samples.begin(),
                            samples.end());
    media_.erase(it);
  });
}

std::vector<rtp::QosSample> UaNode::AllQosSamples() const {
  std::vector<rtp::QosSample> out = retired_samples_;
  for (const auto& [call_id, session] : media_) {
    const auto& samples = session->samples();
    out.insert(out.end(), samples.begin(), samples.end());
  }
  return out;
}

rtp::ReceiverStats UaNode::AggregateReceiverStats() const {
  rtp::ReceiverStats out = retired_stats_;
  for (const auto& [call_id, session] : media_) {
    const auto& stats = session->receiver_stats();
    out.packets_received += stats.packets_received;
    out.packets_lost += stats.packets_lost;
    out.packets_misordered += stats.packets_misordered;
    out.ssrc_mismatches += stats.ssrc_mismatches;
    out.total_delay_seconds += stats.total_delay_seconds;
    out.max_delay_seconds =
        std::max(out.max_delay_seconds, stats.max_delay_seconds);
  }
  return out;
}

// ------------------------------------------------------------ Testbed

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)), rng_(config_.seed, "testbed") {
  scheduler_.AttachMetrics(metrics_);
  // Stamp every log line with simulated time while this testbed is alive.
  common::Log::SetClock([this] { return scheduler_.Now().nanos(); });
  network_ = std::make_unique<net::Network>(scheduler_, config_.seed);
  BuildTopology();
}

Testbed::~Testbed() {
  // The clock closure captures `this`; drop it before the scheduler dies.
  common::Log::SetClock(nullptr);
}

net::Endpoint Testbed::proxy_a_endpoint() const {
  return net::Endpoint{a_.proxy_host->ip(), sip::kDefaultSipPort};
}
net::Endpoint Testbed::proxy_b_endpoint() const {
  return net::Endpoint{b_.proxy_host->ip(), sip::kDefaultSipPort};
}

UaNode& Testbed::AddUa(Enterprise& enterprise, const std::string& name,
                       net::IpAddress ip, const std::string& domain,
                       net::Endpoint proxy,
                       std::vector<std::unique_ptr<UaNode>>& out) {
  auto& host = network_->AddNode<net::Host>(*network_, name, ip);
  auto [to_host, to_hub] =
      network_->ConnectDuplex(*enterprise.hub, host, config_.lan);
  host.SetUplink(to_hub);
  enterprise.hub->AddRoute(net::Subnet(ip, 32), to_host);

  sip::UserAgent::Config ua_config;
  ua_config.user = name;
  ua_config.domain = domain;
  ua_config.outbound_proxy = proxy;
  ua_config.answer_delay = config_.answer_delay;
  ua_config.timers = config_.sip_timers;
  if (config_.enable_registration_auth) ua_config.password = "pw-" + name;
  out.push_back(std::make_unique<UaNode>(
      scheduler_, host, std::move(ua_config), config_.codec,
      config_.talkspurt, config_.qos_sample_every, rng_, &metrics_));
  return *out.back();
}

void Testbed::BuildTopology() {
  net::Network& network = *network_;

  // Core elements.
  internet_ = &network.AddNode<net::Forwarder>("internet");
  a_.router = &network.AddNode<net::Forwarder>("router-a");
  a_.hub = &network.AddNode<net::Forwarder>("hub-a");
  b_.router = &network.AddNode<net::Forwarder>("router-b");
  b_.hub = &network.AddNode<net::Forwarder>("hub-b");
  tap_ = &network.AddNode<net::InlineTap>("vids-tap", scheduler_);

  const net::Subnet subnet_a(net::IpAddress(10, 1, 0, 0), 16);
  const net::Subnet subnet_b(net::IpAddress(10, 2, 0, 0), 16);
  const net::Subnet subnet_atk(net::IpAddress(10, 9, 0, 0), 16);

  // Network A: hub ↔ router ↔ internet.
  {
    auto [hub_to_router, router_to_hub] =
        network.ConnectDuplex(*a_.hub, *a_.router, config_.lan);
    a_.hub->SetDefaultRoute(hub_to_router);
    a_.router->AddRoute(subnet_a, router_to_hub);
  }
  {
    net::Link& router_to_inet =
        network.Connect(*a_.router, *internet_, config_.wan);
    a_.router->SetDefaultRoute(router_to_inet);
    net::Link& inet_to_router =
        network.Connect(*internet_, *a_.router, config_.cloud);
    internet_->AddRoute(subnet_a, inet_to_router);
  }

  // Network B: hub ↔ TAP ↔ router ↔ internet.
  {
    net::Link& hub_to_tap =
        network.Connect(*b_.hub, tap_->port_from_inside(), config_.lan);
    b_.hub->SetDefaultRoute(hub_to_tap);
    net::Link& router_to_tap =
        network.Connect(*b_.router, tap_->port_from_outside(), config_.lan);
    b_.router->AddRoute(subnet_b, router_to_tap);
    net::Link& tap_to_hub =
        network.MakeLink("vids-tap->hub-b", *b_.hub, config_.lan);
    net::Link& tap_to_router =
        network.MakeLink("vids-tap->router-b", *b_.router, config_.lan);
    tap_->SetLinks(tap_to_hub, tap_to_router);
  }
  {
    net::Link& router_to_inet =
        network.Connect(*b_.router, *internet_, config_.wan);
    b_.router->SetDefaultRoute(router_to_inet);
    net::Link& inet_to_router =
        network.Connect(*internet_, *b_.router, config_.cloud);
    internet_->AddRoute(subnet_b, inet_to_router);
  }

  // Attacker on the outside.
  {
    attacker_host_ = &network.AddNode<net::Host>(
        *network_, "attacker", net::IpAddress(10, 9, 0, 66));
    auto [to_attacker, to_inet] =
        network.ConnectDuplex(*internet_, *attacker_host_, config_.lan);
    attacker_host_->SetUplink(to_inet);
    internet_->AddRoute(subnet_atk, to_attacker);
    attacker_ =
        std::make_unique<attacks::AttackToolkit>(scheduler_, *attacker_host_);
  }

  // Proxies.
  sip::DomainDirectory directory;
  a_.proxy_host = &network.AddNode<net::Host>(*network_, "proxy-a",
                                              net::IpAddress(10, 1, 0, 1));
  b_.proxy_host = &network.AddNode<net::Host>(*network_, "proxy-b",
                                              net::IpAddress(10, 2, 0, 1));
  directory[kDomainA] = net::Endpoint{a_.proxy_host->ip(), 5060};
  directory[kDomainB] = net::Endpoint{b_.proxy_host->ip(), 5060};
  for (auto [enterprise, host, domain] :
       {std::tuple{&a_, a_.proxy_host, kDomainA},
        std::tuple{&b_, b_.proxy_host, kDomainB}}) {
    auto [to_host, to_hub] =
        network.ConnectDuplex(*enterprise->hub, *host, config_.lan);
    host->SetUplink(to_hub);
    enterprise->hub->AddRoute(net::Subnet(host->ip(), 32), to_host);
    sip::Proxy::Config proxy_config;
    proxy_config.domain = domain;
    proxy_config.directory = directory;
    proxy_config.timers = config_.sip_timers;
    if (config_.enable_registration_auth) {
      proxy_config.require_registration_auth = true;
      for (int i = 0; i < config_.uas_per_network; ++i) {
        const std::string user =
            (enterprise == &a_ ? "a" : "b") + std::to_string(i);
        proxy_config.user_passwords[user] = "pw-" + user;
      }
    }
    auto proxy =
        std::make_unique<sip::Proxy>(scheduler_, *host, proxy_config);
    proxy->transaction_layer().AttachMetrics(metrics_);
    if (enterprise == &a_) {
      proxy_a_ = std::move(proxy);
    } else {
      proxy_b_ = std::move(proxy);
    }
  }

  // User agents: a0..aN in A, b0..bN in B.
  for (int i = 0; i < config_.uas_per_network; ++i) {
    AddUa(a_, "a" + std::to_string(i), net::IpAddress(10, 1, 0, 10 + i),
          kDomainA, proxy_a_endpoint(), uas_a_);
    AddUa(b_, "b" + std::to_string(i), net::IpAddress(10, 2, 0, 10 + i),
          kDomainB, proxy_b_endpoint(), uas_b_);
  }

  // Register all UAs at time zero.
  for (const auto& ua : uas_a_) ua->ua().Register();
  for (const auto& ua : uas_b_) ua->ua().Register();

  // The IDS and the attacker's wiretap share the mirror port.
  if (config_.vids_enabled) {
    vids_ = std::make_unique<ids::Vids>(scheduler_, config_.detection,
                                        config_.cost);
    tap_->SetInspector(vids_->MakeInspector());
  }
  tap_->SetMonitor([this](const net::Datagram& dgram, bool from_outside) {
    eavesdropper_.Feed(dgram, from_outside);
    for (const auto& monitor : extra_monitors_) monitor(dgram, from_outside);
  });
}

void Testbed::StartWorkload(WorkloadConfig workload) {
  for (size_t i = 0; i < uas_a_.size(); ++i) {
    UaNode* caller = uas_a_[i].get();
    auto caller_rng = std::make_shared<common::Stream>(
        rng_.Fork("workload:" + std::to_string(i)));
    // Self-rescheduling call loop per caller.
    auto place_next = std::make_shared<std::function<void()>>();
    *place_next = [this, caller, caller_rng, place_next, workload] {
      const auto pause = sim::Duration::FromSeconds(
          caller_rng->NextExponential(workload.mean_intercall.ToSeconds()));
      scheduler_.ScheduleAfter(pause, [this, caller, caller_rng, place_next,
                                       workload] {
        const auto callee_index =
            caller_rng->NextInRange(0, uas_b_.size() - 1);
        const auto duration = sim::Duration::FromSeconds(
            caller_rng->NextExponential(workload.mean_duration.ToSeconds()));
        caller->ua().PlaceCall(
            uas_b_[callee_index]->ua().address_of_record(), duration);
        (*place_next)();
      });
    };
    (*place_next)();
  }
}

std::vector<sip::CallRecord> Testbed::CompletedCalls() const {
  std::vector<sip::CallRecord> out;
  for (const auto& ua : uas_a_) {
    const auto& records = ua->ua().completed_calls();
    out.insert(out.end(), records.begin(), records.end());
  }
  return out;
}

}  // namespace vids::testbed
