#include "efsm/engine.h"

#include <cstdio>
#include <stdexcept>

#include "common/log.h"

namespace vids::efsm {

EngineMetrics EngineMetrics::Registered(obs::MetricsRegistry& registry) {
  EngineMetrics m;
  m.transitions = &registry.GetCounter("efsm.transitions");
  m.deviations = &registry.GetCounter("efsm.deviations");
  m.sync_sends = &registry.GetCounter("efsm.sync_sends");
  m.nondeterminism = &registry.GetCounter("efsm.nondeterminism");
  m.retired = &registry.GetCounter("efsm.machines_retired");
  m.transition_ns = &registry.GetHistogram("efsm.transition_ns");
  return m;
}

// ------------------------------------------------------------- Context

void Context::Emit(std::string_view channel, Event event) {
  instance_.EmitFrom(channel, std::move(event));
}
void Context::StartTimer(std::string_view name, sim::Duration after) {
  instance_.StartTimer(name, after);
}
void Context::CancelTimer(std::string_view name) {
  instance_.CancelTimer(name);
}
sim::Time Context::Now() const { return instance_.Now(); }

// ----------------------------------------------------- MachineInstance

MachineInstance::MachineInstance(const MachineDef& def, std::string name,
                                 MachineGroup& group)
    : def_(def), name_(std::move(name)), group_(group),
      state_(def.initial_state()) {
  if (state_ == kInvalidState) {
    throw std::invalid_argument(def.name() + ": no initial state defined");
  }
}

MachineInstance::DeliverResult MachineInstance::Deliver(const Event& event) {
  if (retired_) return DeliverResult::kRetired;

  // 1-in-kLatencySamplePeriod deliveries measure wall-clock latency into
  // the shared histogram; everything else pays one increment and one
  // predictable branch. Keeps instrumentation inside the ≤ 10% transition
  // overhead budget while still filling p50/p99 within a second of load.
  EngineMetrics& metrics = group_.metrics_;
  const bool sampled =
      (++metrics.sample_tick & (EngineMetrics::kLatencySamplePeriod - 1)) == 0;
  const int64_t t0 = sampled ? obs::MonotonicNanos() : 0;

  bool in_alphabet = false;
  const auto candidates = def_.CandidatesFor(state_, event.name, in_alphabet);
  // Predicated transitions compete (and §4.1 wants their predicates
  // mutually disjoint — overlap is reported); an unpredicated transition is
  // the "else" branch, taken only when no predicate is enabled.
  const Transition* enabled = nullptr;
  const Transition* fallback = nullptr;
  size_t enabled_count = 0;
  for (const Transition* candidate : candidates) {
    if (!candidate->predicate) {
      if (fallback == nullptr) fallback = candidate;
      continue;
    }
    Context ctx(event, local_, group_.global(), *this);
    if (candidate->predicate(ctx)) {
      ++enabled_count;
      if (enabled == nullptr) enabled = candidate;
    }
  }
  if (enabled == nullptr) enabled = fallback;

  if (enabled == nullptr) {
    const bool is_timer = event.name.starts_with("timer:");
    if (is_timer) return DeliverResult::kIgnored;
    // Event outside the machine's alphabet is not the machine's business.
    if (!in_alphabet) return DeliverResult::kNotInAlphabet;
    if (def_.report_deviations()) {
      // Interning here is off the clean steady-state path: pattern machines
      // (which see arbitrary event storms) don't report deviations, and
      // spec-machine deviations draw from the bounded protocol alphabet.
      metrics.deviations->Inc();
      obs::Record rec;
      rec.type = obs::RecordType::kDeviation;
      rec.when_ns = group_.scheduler_.Now().nanos();
      rec.machine = index_in_group_;
      rec.from = static_cast<int16_t>(state_);
      rec.to = static_cast<int16_t>(state_);
      rec.a = ArgKey::Intern(event.name).id();
      group_.recorder_.Record(rec);
      if (group_.observer() != nullptr) {
        group_.observer()->OnDeviation(*this, event);
      }
    }
    return DeliverResult::kDeviation;
  }

  if (enabled_count > 1) {
    metrics.nondeterminism->Inc();
    if (group_.observer() != nullptr) {
      group_.observer()->OnNondeterminism(*this, event, enabled_count);
    }
  }

  if (enabled->action) {
    Context ctx(event, local_, group_.global(), *this);
    enabled->action(ctx);
  }
  const StateId prev = state_;
  state_ = enabled->to;
  metrics.transitions->Inc();
  {
    // Candidates are pointers into the definition's transition vector, so
    // the transition's index falls out of pointer arithmetic — no name
    // lookup on the hot path; ExplainFlight decodes it back later.
    obs::Record rec;
    rec.type = obs::RecordType::kTransition;
    rec.when_ns = group_.scheduler_.Now().nanos();
    rec.machine = index_in_group_;
    rec.a = static_cast<uint16_t>(enabled - def_.transitions().data());
    rec.from = static_cast<int16_t>(prev);
    rec.to = static_cast<int16_t>(state_);
    group_.recorder_.Record(rec);
  }
  if (sampled) metrics.transition_ns->Record(obs::MonotonicNanos() - t0);
  if (group_.observer() != nullptr) {
    group_.observer()->OnTransition(*this, *enabled, event);
    if (def_.Kind(state_) == StateKind::kAttack) {
      group_.observer()->OnAttackState(*this, state_, event);
    }
  }
  if (def_.Kind(state_) == StateKind::kFinal) {
    retired_ = true;
    metrics.retired->Inc();
    for (auto& [timer_name, timer] : timers_) timer->Cancel();
    if (group_.observer() != nullptr) group_.observer()->OnRetired(*this);
  }
  return DeliverResult::kTransitioned;
}

void MachineInstance::ResetForReuse() {
  state_ = def_.initial_state();
  retired_ = false;
  local_.Clear();
  timers_.clear();  // Timer destructors cancel any pending expiry
}

size_t MachineInstance::MemoryBytes() const {
  return sizeof(*this) + name_.capacity() + local_.MemoryBytes() +
         timers_.size() * (sizeof(sim::Timer) + 4 * sizeof(void*));
}

void MachineInstance::EmitFrom(std::string_view channel, Event event) {
  group_.Enqueue(*this, channel, std::move(event));
}

void MachineInstance::StartTimer(std::string_view name, sim::Duration after) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_
             .emplace(std::string(name),
                      std::make_unique<sim::Timer>(group_.scheduler()))
             .first;
  }
  const std::string timer_name(name);
  it->second->Start(after, [this, timer_name] {
    group_.OnTimerFired(*this, timer_name);
  });
}

void MachineInstance::CancelTimer(std::string_view name) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) it->second->Cancel();
}

sim::Time MachineInstance::Now() const { return group_.scheduler().Now(); }

// -------------------------------------------------------- MachineGroup

MachineGroup::MachineGroup(std::string name, sim::Scheduler& scheduler,
                           Observer* observer, const EngineMetrics* metrics)
    : name_(std::move(name)), scheduler_(scheduler), observer_(observer) {
  if (metrics != nullptr) metrics_ = *metrics;
  // A call group holds the two protocol machines, two always-on scenario
  // machines, and up to four session-scoped ones added later — reserve once
  // instead of doubling through the call-creation hot path.
  machines_.reserve(8);
}

MachineInstance& MachineGroup::AddMachine(const MachineDef& def,
                                          std::string instance_name) {
  machines_.push_back(std::unique_ptr<MachineInstance>(
      new MachineInstance(def, std::move(instance_name), *this)));
  machines_.back()->index_in_group_ =
      machines_.size() <= obs::Record::kNoMachine
          ? static_cast<uint8_t>(machines_.size() - 1)
          : obs::Record::kNoMachine;
  return *machines_.back();
}

void MachineGroup::ResetForReuse(std::string name) {
  name_ = std::move(name);
  global_.Clear();
  for (auto& machine : machines_) machine->ResetForReuse();
  for (auto& [channel_name, channel] : channels_) {
    channel.queue.clear();
    channel.head = 0;
  }
  recorder_.Reset();
  pumping_ = false;
}

void MachineGroup::RouteChannel(std::string channel, MachineInstance& dst) {
  Channel& entry = channels_[std::move(channel)];
  entry.dst = &dst;
  if (entry.id == 0) entry.id = static_cast<uint16_t>(channels_.size());
}

MachineInstance* MachineGroup::Find(std::string_view instance_name) {
  for (const auto& machine : machines_) {
    if (machine->name() == instance_name) return machine.get();
  }
  return nullptr;
}

void MachineGroup::DeliverData(MachineInstance& machine, const Event& event) {
  // Paper §4.2: synchronization events waiting in FIFO queues have priority
  // over data packet events.
  PumpSyncQueues();
  machine.Deliver(event);
  PumpSyncQueues();
}

void MachineGroup::Enqueue(const MachineInstance& from,
                           std::string_view channel, Event event) {
  const auto it = channels_.find(channel);
  if (it == channels_.end() || it->second.dst == nullptr) {
    VIDS_DEBUG_C("efsm") << name_ << ": sync event '" << event.name
                         << "' emitted on unrouted channel '" << channel
                         << "'";
    return;
  }
  metrics_.sync_sends->Inc();
  obs::Record rec;
  rec.type = obs::RecordType::kSyncSend;
  rec.when_ns = scheduler_.Now().nanos();
  rec.machine = from.index_in_group_;
  rec.a = ArgKey::Intern(event.name).id();
  rec.aux = it->second.id;
  recorder_.Record(rec);
  it->second.queue.push_back(std::move(event));
}

void MachineGroup::PumpSyncQueues() {
  if (pumping_) return;  // re-entrant Emit during a sync delivery
  pumping_ = true;
  // Bounded pump: a cyclic emit chain cannot livelock the IDS.
  constexpr int kMaxSyncEvents = 1000;
  int processed = 0;
  bool progressed = true;
  while (progressed && processed < kMaxSyncEvents) {
    progressed = false;
    for (auto& [channel_name, channel] : channels_) {
      while (channel.head < channel.queue.size() &&
             processed < kMaxSyncEvents) {
        Event event = std::move(channel.queue[channel.head]);
        if (++channel.head == channel.queue.size()) {
          channel.queue.clear();  // keeps capacity for the next emit
          channel.head = 0;
        }
        ++processed;
        progressed = true;
        channel.dst->Deliver(event);
      }
    }
  }
  pumping_ = false;
}

void MachineGroup::OnTimerFired(MachineInstance& machine,
                                const std::string& timer_name) {
  Event event;
  event.name = TimerEventName(timer_name);
  DeliverData(machine, event);
}

bool MachineGroup::AllRetired() const {
  for (const auto& machine : machines_) {
    if (!machine->retired()) return false;
  }
  return !machines_.empty();
}

size_t MachineGroup::MemoryBytes() const {
  size_t bytes = sizeof(*this) + name_.capacity() + global_.MemoryBytes();
  for (const auto& machine : machines_) bytes += machine->MemoryBytes();
  for (const auto& [channel_name, channel] : channels_) {
    bytes += channel_name.capacity() + sizeof(Channel);
  }
  return bytes;
}

namespace {

std::string FormatSimSeconds(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(ns) * 1e-9);
  return buf;
}

}  // namespace

std::vector<std::string> MachineGroup::ExplainFlight(
    size_t max, const FactDecoder& fact_decoder) const {
  std::vector<std::string> lines;
  const size_t held = recorder_.size();
  const size_t skip = held > max ? held - max : 0;
  lines.reserve(held - skip);
  size_t index = 0;
  recorder_.ForEach([&](const obs::Record& rec) {
    if (index++ < skip) return;
    std::string line = "t=";
    line += FormatSimSeconds(rec.when_ns);
    line += "s ";
    const MachineInstance* machine =
        rec.machine < machines_.size() ? machines_[rec.machine].get() : nullptr;
    switch (rec.type) {
      case obs::RecordType::kTransition: {
        if (machine == nullptr ||
            rec.a >= machine->def().transitions().size()) {
          line += "transition <corrupt record>";
          break;
        }
        const MachineDef& def = machine->def();
        const Transition& t = def.transitions()[rec.a];
        line += machine->name();
        line += ": '";
        line += t.event_name;
        line += "' ";
        line += def.StateName(rec.from);
        line += " -> ";
        line += def.StateName(rec.to);
        if (!t.label.empty()) {
          line += " [";
          line += t.label;
          line += ']';
        }
        break;
      }
      case obs::RecordType::kSyncSend: {
        line += machine != nullptr ? machine->name() : "?";
        line += ": sync-send '";
        line += ArgKey::NameOfId(rec.a);
        line += '\'';
        for (const auto& [channel_name, channel] : channels_) {
          if (channel.id == rec.aux) {
            line += " on ";
            line += channel_name;
            break;
          }
        }
        break;
      }
      case obs::RecordType::kDeviation: {
        line += machine != nullptr ? machine->name() : "?";
        line += ": deviation, event '";
        line += ArgKey::NameOfId(rec.a);
        line += "' in state ";
        line += machine != nullptr ? machine->def().StateName(rec.from)
                                   : std::string_view("?");
        break;
      }
      case obs::RecordType::kFactAssert:
      case obs::RecordType::kFactRetract: {
        std::string decoded;
        if (fact_decoder) decoded = fact_decoder(rec);
        if (!decoded.empty()) {
          line += decoded;
        } else {
          line += rec.type == obs::RecordType::kFactAssert ? "fact-assert"
                                                           : "fact-retract";
          char buf[24];
          std::snprintf(buf, sizeof(buf), " aux=0x%llx",
                        static_cast<unsigned long long>(rec.aux));
          line += buf;
        }
        break;
      }
      case obs::RecordType::kAlert: {
        line += "ALERT '";
        line += ArgKey::NameOfId(rec.a);
        line += "' raised";
        if (machine != nullptr) {
          line += " by ";
          line += machine->name();
        }
        break;
      }
      case obs::RecordType::kSpan: {
        // Pipeline spans live in the sharded engine's per-shard recorders,
        // not in call groups — but render them anyway so a mixed ring stays
        // readable: shard, end-to-end ns, and the two stage times in µs.
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "span shard=%d e2e=%lluns queue=%uus inspect=%dus",
                      static_cast<int>(rec.to),
                      static_cast<unsigned long long>(rec.aux),
                      static_cast<unsigned>(rec.a), static_cast<int>(rec.from));
        line += buf;
        break;
      }
      case obs::RecordType::kNone:
        line += "<empty>";
        break;
    }
    lines.push_back(std::move(line));
  });
  return lines;
}

}  // namespace vids::efsm
