#include "efsm/engine.h"

#include <stdexcept>

#include "common/log.h"

namespace vids::efsm {

// ------------------------------------------------------------- Context

void Context::Emit(std::string_view channel, Event event) {
  instance_.EmitFrom(channel, std::move(event));
}
void Context::StartTimer(std::string_view name, sim::Duration after) {
  instance_.StartTimer(name, after);
}
void Context::CancelTimer(std::string_view name) {
  instance_.CancelTimer(name);
}
sim::Time Context::Now() const { return instance_.Now(); }

// ----------------------------------------------------- MachineInstance

MachineInstance::MachineInstance(const MachineDef& def, std::string name,
                                 MachineGroup& group)
    : def_(def), name_(std::move(name)), group_(group),
      state_(def.initial_state()) {
  if (state_ == kInvalidState) {
    throw std::invalid_argument(def.name() + ": no initial state defined");
  }
}

MachineInstance::DeliverResult MachineInstance::Deliver(const Event& event) {
  if (retired_) return DeliverResult::kRetired;

  bool in_alphabet = false;
  const auto candidates = def_.CandidatesFor(state_, event.name, in_alphabet);
  // Predicated transitions compete (and §4.1 wants their predicates
  // mutually disjoint — overlap is reported); an unpredicated transition is
  // the "else" branch, taken only when no predicate is enabled.
  const Transition* enabled = nullptr;
  const Transition* fallback = nullptr;
  size_t enabled_count = 0;
  for (const Transition* candidate : candidates) {
    if (!candidate->predicate) {
      if (fallback == nullptr) fallback = candidate;
      continue;
    }
    Context ctx(event, local_, group_.global(), *this);
    if (candidate->predicate(ctx)) {
      ++enabled_count;
      if (enabled == nullptr) enabled = candidate;
    }
  }
  if (enabled == nullptr) enabled = fallback;

  if (enabled == nullptr) {
    const bool is_timer = event.name.starts_with("timer:");
    if (is_timer) return DeliverResult::kIgnored;
    // Event outside the machine's alphabet is not the machine's business.
    if (!in_alphabet) return DeliverResult::kNotInAlphabet;
    if (def_.report_deviations() && group_.observer() != nullptr) {
      group_.observer()->OnDeviation(*this, event);
    }
    return DeliverResult::kDeviation;
  }

  if (enabled_count > 1 && group_.observer() != nullptr) {
    group_.observer()->OnNondeterminism(*this, event, enabled_count);
  }

  if (enabled->action) {
    Context ctx(event, local_, group_.global(), *this);
    enabled->action(ctx);
  }
  state_ = enabled->to;
  if (group_.observer() != nullptr) {
    group_.observer()->OnTransition(*this, *enabled, event);
    if (def_.Kind(state_) == StateKind::kAttack) {
      group_.observer()->OnAttackState(*this, state_, event);
    }
  }
  if (def_.Kind(state_) == StateKind::kFinal) {
    retired_ = true;
    for (auto& [timer_name, timer] : timers_) timer->Cancel();
    if (group_.observer() != nullptr) group_.observer()->OnRetired(*this);
  }
  return DeliverResult::kTransitioned;
}

size_t MachineInstance::MemoryBytes() const {
  return sizeof(*this) + name_.capacity() + local_.MemoryBytes() +
         timers_.size() * (sizeof(sim::Timer) + 4 * sizeof(void*));
}

void MachineInstance::EmitFrom(std::string_view channel, Event event) {
  group_.Enqueue(channel, std::move(event));
}

void MachineInstance::StartTimer(std::string_view name, sim::Duration after) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_
             .emplace(std::string(name),
                      std::make_unique<sim::Timer>(group_.scheduler()))
             .first;
  }
  const std::string timer_name(name);
  it->second->Start(after, [this, timer_name] {
    group_.OnTimerFired(*this, timer_name);
  });
}

void MachineInstance::CancelTimer(std::string_view name) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) it->second->Cancel();
}

sim::Time MachineInstance::Now() const { return group_.scheduler().Now(); }

// -------------------------------------------------------- MachineGroup

MachineGroup::MachineGroup(std::string name, sim::Scheduler& scheduler,
                           Observer* observer)
    : name_(std::move(name)), scheduler_(scheduler), observer_(observer) {}

MachineInstance& MachineGroup::AddMachine(const MachineDef& def,
                                          std::string instance_name) {
  machines_.push_back(std::unique_ptr<MachineInstance>(
      new MachineInstance(def, std::move(instance_name), *this)));
  return *machines_.back();
}

void MachineGroup::RouteChannel(std::string channel, MachineInstance& dst) {
  channels_[std::move(channel)].dst = &dst;
}

MachineInstance* MachineGroup::Find(std::string_view instance_name) {
  for (const auto& machine : machines_) {
    if (machine->name() == instance_name) return machine.get();
  }
  return nullptr;
}

void MachineGroup::DeliverData(MachineInstance& machine, const Event& event) {
  // Paper §4.2: synchronization events waiting in FIFO queues have priority
  // over data packet events.
  PumpSyncQueues();
  machine.Deliver(event);
  PumpSyncQueues();
}

void MachineGroup::Enqueue(std::string_view channel, Event event) {
  const auto it = channels_.find(channel);
  if (it == channels_.end() || it->second.dst == nullptr) {
    VIDS_DEBUG() << name_ << ": sync event '" << event.name
                 << "' emitted on unrouted channel '" << channel << "'";
    return;
  }
  it->second.queue.push_back(std::move(event));
}

void MachineGroup::PumpSyncQueues() {
  if (pumping_) return;  // re-entrant Emit during a sync delivery
  pumping_ = true;
  // Bounded pump: a cyclic emit chain cannot livelock the IDS.
  constexpr int kMaxSyncEvents = 1000;
  int processed = 0;
  bool progressed = true;
  while (progressed && processed < kMaxSyncEvents) {
    progressed = false;
    for (auto& [channel_name, channel] : channels_) {
      while (!channel.queue.empty() && processed < kMaxSyncEvents) {
        Event event = std::move(channel.queue.front());
        channel.queue.pop_front();
        ++processed;
        progressed = true;
        channel.dst->Deliver(event);
      }
    }
  }
  pumping_ = false;
}

void MachineGroup::OnTimerFired(MachineInstance& machine,
                                const std::string& timer_name) {
  Event event;
  event.name = TimerEventName(timer_name);
  DeliverData(machine, event);
}

bool MachineGroup::AllRetired() const {
  for (const auto& machine : machines_) {
    if (!machine->retired()) return false;
  }
  return !machines_.empty();
}

size_t MachineGroup::MemoryBytes() const {
  size_t bytes = sizeof(*this) + name_.capacity() + global_.MemoryBytes();
  for (const auto& machine : machines_) bytes += machine->MemoryBytes();
  for (const auto& [channel_name, channel] : channels_) {
    bytes += channel_name.capacity() + sizeof(Channel);
  }
  return bytes;
}

}  // namespace vids::efsm
