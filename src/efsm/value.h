// Typed values, interned argument keys, and variable stores for extended
// finite state machines.
//
// Definition 1 of the paper equips an EFSM with a vector v̄ of state
// variables over domains D, split in §4.2 into local variables (v.l_*, one
// protocol machine) and global variables (v.g_*, shared by all machines of
// a call group — how SDP media parameters reach the RTP machine). A
// VariableStore is one such scope; memory accounting supports the paper's
// §7.3 per-call memory-cost claim.
//
// Argument and variable names are interned once into a process-wide ArgKey
// table, so the per-packet hot path compares 16-bit integers instead of
// hashing strings, and both EventArgs and VariableStore are flat arrays
// with inline capacity — steady-state packet inspection allocates nothing.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace vids::efsm {

/// A state-variable or event-argument value.
using Value = std::variant<std::monostate, int64_t, double, std::string, bool>;

/// Readable rendering for traces and alerts.
std::string ToString(const Value& value);

/// An interned identifier for an event-argument or state-variable name.
/// Interning is append-only and process-wide, and thread-safe: ids must
/// agree across the sharded engine's worker threads (a shard's hook events
/// are decoded by the coordinator). Lookup of an already-interned name is
/// lock-free; only the first intern of a new spelling takes a mutex.
/// Equality and lookup on a key are integer operations; `name()` recovers
/// the original spelling.
class ArgKey {
 public:
  /// The default-constructed key is invalid and compares unequal to every
  /// interned key.
  constexpr ArgKey() = default;

  /// Returns the key for `name`, interning it on first use.
  static ArgKey Intern(std::string_view name);

  /// Recovers the spelling of an interned id — the decode side of the
  /// flight recorder's compact records. "<invalid>" for unknown ids.
  static std::string_view NameOfId(uint16_t id);

  std::string_view name() const;
  constexpr uint16_t id() const { return id_; }
  constexpr bool valid() const { return id_ != kInvalidId; }

  friend constexpr bool operator==(ArgKey a, ArgKey b) {
    return a.id_ == b.id_;
  }

 private:
  static constexpr uint16_t kInvalidId = 0xFFFF;
  constexpr explicit ArgKey(uint16_t id) : id_(id) {}
  uint16_t id_ = kInvalidId;
};

/// The event-argument vector x̄: a small flat map keyed by ArgKey. The
/// first kInlineCapacity entries live inline (no heap); larger vectors
/// (SIP's parsed-header events) spill wholesale to a heap vector so
/// iteration stays a single contiguous scan either way. Lookup is a linear
/// integer-compare scan — for the ≤ 20 arguments an event carries that
/// beats any tree or hash by a wide margin.
class EventArgs {
 public:
  struct Entry {
    ArgKey key;
    Value value;
  };
  using const_iterator = const Entry*;

  EventArgs() = default;
  EventArgs(const EventArgs& other);
  EventArgs(EventArgs&& other) noexcept;
  EventArgs& operator=(const EventArgs& other);
  EventArgs& operator=(EventArgs&& other) noexcept;

  /// Returns the value for `key`, inserting a monostate entry if absent.
  Value& operator[](ArgKey key);
  Value& operator[](std::string_view name) {
    return (*this)[ArgKey::Intern(name)];
  }

  /// Positional fast path for writers that fill the same keys in the same
  /// order every time (the packet classifier's reused scratch events): when
  /// `index` already holds `key` — the steady state — this is a single
  /// integer compare; otherwise it falls back to the keyed lookup, so the
  /// result is always identical to operator[](key).
  Value& Slot(size_t index, ArgKey key) {
    if (index < size_) {
      Entry& entry = data()[index];
      if (entry.key == key) return entry.value;
    }
    return (*this)[key];
  }

  /// Returns the entry's value or nullptr. Never allocates.
  const Value* Find(ArgKey key) const;
  const Value* Find(std::string_view name) const {
    return Find(ArgKey::Intern(name));
  }
  bool contains(ArgKey key) const { return Find(key) != nullptr; }
  bool contains(std::string_view name) const { return Find(name) != nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear();

  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  /// Approximate heap footprint of the argument vector (names are interned
  /// and shared, so only spilled storage and string payloads count).
  size_t MemoryBytes() const;

 private:
  static constexpr uint32_t kInlineCapacity = 12;

  bool spilled() const { return size_ > kInlineCapacity; }
  const Entry* data() const {
    return spilled() ? heap_.data() : inline_.data();
  }
  Entry* data() { return spilled() ? heap_.data() : inline_.data(); }

  uint32_t size_ = 0;
  std::array<Entry, kInlineCapacity> inline_{};
  std::vector<Entry> heap_;
};

/// One variable scope (local or global). Same flat interned-key layout as
/// EventArgs: the per-call variable count observed in TAB-MEM runs is ~10,
/// where a linear scan over 16-bit ids is both the fastest and the smallest
/// representation.
class VariableStore {
 public:
  void Set(ArgKey key, Value value);
  void Set(std::string_view name, Value value) {
    Set(ArgKey::Intern(name), std::move(value));
  }

  /// Unset variables read as monostate.
  const Value& Get(ArgKey key) const;
  const Value& Get(std::string_view name) const {
    return Get(ArgKey::Intern(name));
  }
  bool Has(ArgKey key) const;
  bool Has(std::string_view name) const { return Has(ArgKey::Intern(name)); }
  void Erase(ArgKey key);
  void Erase(std::string_view name) { Erase(ArgKey::Intern(name)); }
  void Clear() { values_.clear(); }
  size_t size() const { return values_.size(); }

  // Typed readers returning nullopt when absent or of another type.
  std::optional<int64_t> GetInt(ArgKey key) const;
  std::optional<int64_t> GetInt(std::string_view name) const {
    return GetInt(ArgKey::Intern(name));
  }
  std::optional<double> GetDouble(ArgKey key) const;
  std::optional<double> GetDouble(std::string_view name) const {
    return GetDouble(ArgKey::Intern(name));
  }
  std::optional<std::string> GetString(ArgKey key) const;
  std::optional<std::string> GetString(std::string_view name) const {
    return GetString(ArgKey::Intern(name));
  }
  std::optional<bool> GetBool(ArgKey key) const;
  std::optional<bool> GetBool(std::string_view name) const {
    return GetBool(ArgKey::Intern(name));
  }

  /// Approximate heap + inline footprint, for the TAB-MEM experiment.
  size_t MemoryBytes() const;

  /// The variables in insertion order (traces, memory accounting).
  const std::vector<std::pair<ArgKey, Value>>& values() const {
    return values_;
  }

 private:
  std::vector<std::pair<ArgKey, Value>> values_;
};

}  // namespace vids::efsm
