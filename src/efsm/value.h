// Typed values and variable stores for extended finite state machines.
//
// Definition 1 of the paper equips an EFSM with a vector v̄ of state
// variables over domains D, split in §4.2 into local variables (v.l_*, one
// protocol machine) and global variables (v.g_*, shared by all machines of
// a call group — how SDP media parameters reach the RTP machine). A
// VariableStore is one such scope; memory accounting supports the paper's
// §7.3 per-call memory-cost claim.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace vids::efsm {

/// A state-variable or event-argument value.
using Value = std::variant<std::monostate, int64_t, double, std::string, bool>;

/// Readable rendering for traces and alerts.
std::string ToString(const Value& value);

class VariableStore {
 public:
  void Set(std::string_view name, Value value);
  /// Unset variables read as monostate.
  const Value& Get(std::string_view name) const;
  bool Has(std::string_view name) const;
  void Erase(std::string_view name);
  void Clear() { values_.clear(); }
  size_t size() const { return values_.size(); }

  // Typed readers returning nullopt when absent or of another type.
  std::optional<int64_t> GetInt(std::string_view name) const;
  std::optional<double> GetDouble(std::string_view name) const;
  std::optional<std::string> GetString(std::string_view name) const;
  std::optional<bool> GetBool(std::string_view name) const;

  /// Approximate heap + inline footprint, for the TAB-MEM experiment.
  size_t MemoryBytes() const;

  const std::map<std::string, Value, std::less<>>& values() const {
    return values_;
  }

 private:
  std::map<std::string, Value, std::less<>> values_;
};

}  // namespace vids::efsm
