// EFSM runtime: instances, communicating groups, sync channels, timers.
//
// One MachineGroup exists per monitored call (paper §5: "only one instance
// of a protocol state machine is maintained ... per call"). The group owns
// the shared global variable store, the FIFO synchronization channels
// between machines (Fig. 2(b)) and delivers events with the paper's
// priority rule: queued synchronization events are processed before any
// further data event.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "efsm/machine.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"

namespace vids::efsm {

class MachineInstance;
class MachineGroup;

/// Preallocated metric slots for the engine, shared by every machine group
/// of one deployment (per-call metrics would explode the registry; the
/// interesting cardinality lives in the per-call flight recorders instead).
/// Defaults are the null sinks, so an unattached group pays one pointer
/// write per update and never branches. The per-transition latency
/// histogram is sampled 1-in-kLatencySamplePeriod so its two wall-clock
/// reads amortize to well under a nanosecond per delivery.
struct EngineMetrics {
  static constexpr uint32_t kLatencySamplePeriod = 64;

  obs::Counter* transitions = &obs::NullCounter();
  obs::Counter* deviations = &obs::NullCounter();  // out-of-spec hits
  obs::Counter* sync_sends = &obs::NullCounter();  // FIFO channel emits
  obs::Counter* nondeterminism = &obs::NullCounter();
  obs::Counter* retired = &obs::NullCounter();
  obs::Histogram* transition_ns = &obs::NullHistogram();
  uint32_t sample_tick = 0;  // per-group copy's own sampling phase

  /// Registers the slots under "efsm.*" in `registry`.
  static EngineMetrics Registered(obs::MetricsRegistry& registry);
};

/// Receives the analysis-relevant happenings. The vIDS Analysis Engine
/// implements this; tests use it to assert machine behavior.
class Observer {
 public:
  virtual ~Observer() = default;
  /// A transition fired.
  virtual void OnTransition(const MachineInstance&, const Transition&,
                            const Event&) {}
  /// A transition entered a state annotated kAttack.
  virtual void OnAttackState(const MachineInstance&, StateId,
                             const Event&) {}
  /// An in-alphabet event arrived with no enabled transition — a deviation
  /// from the protocol specification (only for machines that report them).
  virtual void OnDeviation(const MachineInstance&, const Event&) {}
  /// More than one predicate was enabled (`enabled_count` of them): the
  /// definition violates the mutual-disjointness condition of §4.1. First
  /// candidate wins.
  virtual void OnNondeterminism(const MachineInstance&, const Event&,
                                size_t /*enabled_count*/) {}
  /// The machine reached a kFinal state and retired.
  virtual void OnRetired(const MachineInstance&) {}
};

class MachineInstance {
 public:
  enum class DeliverResult {
    kTransitioned,
    kNotInAlphabet,  // event name never appears in the definition: ignored
    kIgnored,        // timer event with no enabled transition: harmless
    kDeviation,      // data/sync event with no enabled transition
    kRetired,        // machine already reached a final state
  };

  DeliverResult Deliver(const Event& event);

  const MachineDef& def() const { return def_; }
  const std::string& name() const { return name_; }
  StateId state() const { return state_; }
  std::string_view StateName() const { return def_.StateName(state_); }
  bool retired() const { return retired_; }
  VariableStore& local() { return local_; }
  const VariableStore& local() const { return local_; }
  MachineGroup& group() { return group_; }
  const MachineGroup& group() const { return group_; }
  /// Position within the owning group — the flight recorder's machine id.
  uint8_t index_in_group() const { return index_in_group_; }

  /// Approximate per-instance footprint (§7.3 memory accounting).
  size_t MemoryBytes() const;

 private:
  friend class MachineGroup;
  friend class Context;

  /// Returns the instance to its initial configuration: initial state,
  /// empty variable valuation, no pending timers. Variable-store capacity
  /// is retained — that is the point of recycling.
  void ResetForReuse();
  MachineInstance(const MachineDef& def, std::string name,
                  MachineGroup& group);

  // Context's action-side hooks.
  void EmitFrom(std::string_view channel, Event event);
  void StartTimer(std::string_view name, sim::Duration after);
  void CancelTimer(std::string_view name);
  sim::Time Now() const;

  const MachineDef& def_;
  std::string name_;
  MachineGroup& group_;
  StateId state_;
  bool retired_ = false;
  uint8_t index_in_group_ = obs::Record::kNoMachine;  // ring-record identity
  VariableStore local_;
  std::map<std::string, std::unique_ptr<sim::Timer>, std::less<>> timers_;
};

class MachineGroup {
 public:
  /// `observer` may be null; it must outlive the group otherwise.
  /// `metrics`, when non-null, is copied — the shared slots it points at
  /// must outlive the group (in practice they live in a MetricsRegistry
  /// owned by the deployment that creates the groups).
  MachineGroup(std::string name, sim::Scheduler& scheduler,
               Observer* observer, const EngineMetrics* metrics = nullptr);

  /// Instantiates `def` into this group under `instance_name`. The
  /// definition is shared, not copied — it must outlive the group (that is
  /// the paper's cost model: per-call state is a configuration, the machine
  /// itself exists once). The rvalue overload is deleted so a temporary
  /// definition cannot dangle.
  MachineInstance& AddMachine(const MachineDef& def,
                              std::string instance_name);
  MachineInstance& AddMachine(MachineDef&& def,
                              std::string instance_name) = delete;

  /// Routes the named channel (e.g. "SIP->RTP") to a destination machine.
  void RouteChannel(std::string channel, MachineInstance& dst);

  /// Resets the group for reuse under a new call name: every machine back
  /// to its initial configuration, variable valuations and sync queues
  /// emptied, pending timers cancelled, flight ring forgotten. Machine set
  /// and channel routing are kept, so only a pool of identically-shaped
  /// groups may recycle through this (the fact base's call groups are).
  /// Buffer capacities survive — recycling a group skips the allocation
  /// storm of building one.
  void ResetForReuse(std::string name);

  /// Delivers a data event to one machine, then pumps the synchronization
  /// queues to quiescence (sync has priority over the next data event).
  void DeliverData(MachineInstance& machine, const Event& event);

  MachineInstance* Find(std::string_view instance_name);

  const std::string& name() const { return name_; }
  sim::Scheduler& scheduler() { return scheduler_; }
  Observer* observer() { return observer_; }
  VariableStore& global() { return global_; }
  const std::vector<std::unique_ptr<MachineInstance>>& machines() const {
    return machines_;
  }
  /// True when every machine reached a final state — the call completed and
  /// the fact base may delete this group (paper §5).
  bool AllRetired() const;
  size_t MemoryBytes() const;

  /// The per-call flight recorder: the last FlightRecorder::kCapacity
  /// engine happenings of this call, in compact binary form. The analysis
  /// engine appends its own fact-base and alert records here too, so an
  /// alert's provenance is the tail of exactly one ring. Mutable through a
  /// const group: recording is an observability side effect, not a change
  /// of the group's logical state (observers hold const references).
  obs::FlightRecorder& flight_recorder() const { return recorder_; }

  /// Decodes records the group itself cannot interpret (fact-base records
  /// with producer-tagged `aux` payloads). Returns empty to fall back to a
  /// generic rendering.
  using FactDecoder = std::function<std::string(const obs::Record&)>;

  /// Renders the newest `max` flight-recorder records, oldest first, one
  /// human-readable line each. This is the alert-provenance view; it
  /// allocates freely and must stay off the packet hot path.
  std::vector<std::string> ExplainFlight(
      size_t max = obs::FlightRecorder::kCapacity,
      const FactDecoder& fact_decoder = {}) const;

 private:
  friend class MachineInstance;
  void Enqueue(const MachineInstance& from, std::string_view channel,
               Event event);
  void PumpSyncQueues();
  void OnTimerFired(MachineInstance& machine, const std::string& timer_name);

  struct Channel {
    MachineInstance* dst = nullptr;
    // FIFO as vector + cursor rather than std::deque: sizeof(Event) exceeds
    // the deque chunk size, so a deque pays one heap node per queued event
    // (plus the map block at construction); the vector buffer is reused for
    // the life of the channel.
    std::vector<Event> queue;
    size_t head = 0;
    uint16_t id = 0;  // ring-record identity, assigned at RouteChannel
  };

  std::string name_;
  sim::Scheduler& scheduler_;
  Observer* observer_;
  EngineMetrics metrics_;  // copy: one indirection per update, no null check
  mutable obs::FlightRecorder recorder_;
  VariableStore global_;
  std::vector<std::unique_ptr<MachineInstance>> machines_;
  std::map<std::string, Channel, std::less<>> channels_;
  bool pumping_ = false;
};

}  // namespace vids::efsm
