// EFSM definitions: the static quintuple M = (Σ, S, v̄, D, T).
//
// A MachineDef is built once per protocol or attack pattern and shared by
// every per-call instance, matching the paper's claim that per-call cost is
// only a configuration (state id + variable valuation). Transitions carry a
// predicate P(x̄, v̄) over event arguments and state variables and an action
// A(v̄) that updates variables, emits synchronization events (c!event) and
// manages timers. States may be annotated as attack states (s_attack);
// reaching one is an attack-scenario match.
//
// Dispatch is compiled: the definition lazily builds a per-(state, event)
// candidate table plus an event-alphabet bloom filter, so delivering an
// event is one filtered hash lookup and a span scan instead of a walk over
// every transition in the definition.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "efsm/value.h"
#include "sim/time.h"

namespace vids::efsm {

using StateId = int;
constexpr StateId kInvalidState = -1;

enum class StateKind : uint8_t {
  kNormal,
  kInitial,
  kFinal,   // reaching it retires the instance (call completed cleanly)
  kAttack,  // reaching it raises an attack alert
};

/// An event instance: a data packet arrival (c?event(x̄)), a synchronization
/// message from a peer machine (δ), or a timer expiry. Arguments live in a
/// flat interned-key vector; hot-path readers pass ArgKey constants so a
/// lookup is a short integer scan, string_view overloads intern on the fly.
struct Event {
  std::string name;
  EventArgs args;

  const Value& Arg(ArgKey key) const {
    static const Value kUnset{};
    const Value* v = args.Find(key);
    return v == nullptr ? kUnset : *v;
  }
  const Value& Arg(std::string_view key) const {
    return Arg(ArgKey::Intern(key));
  }
  std::optional<int64_t> ArgInt(ArgKey key) const {
    const auto* v = std::get_if<int64_t>(&Arg(key));
    return v ? std::optional<int64_t>(*v) : std::nullopt;
  }
  std::optional<int64_t> ArgInt(std::string_view key) const {
    return ArgInt(ArgKey::Intern(key));
  }
  std::optional<std::string> ArgString(ArgKey key) const {
    const auto* v = std::get_if<std::string>(&Arg(key));
    return v ? std::optional<std::string>(*v) : std::nullopt;
  }
  std::optional<std::string> ArgString(std::string_view key) const {
    return ArgString(ArgKey::Intern(key));
  }
  /// Zero-copy string read: nullptr when absent or not a string.
  const std::string* ArgStr(ArgKey key) const {
    return std::get_if<std::string>(&Arg(key));
  }
};

/// Prefix convention for timer-expiry events: starting timer "T1" delivers
/// Event{ name = "timer:T1" } to the machine that started it.
std::string TimerEventName(std::string_view timer_name);

class MachineInstance;

/// Everything a predicate/action can see and do. Only actions may mutate.
class Context {
 public:
  Context(const Event& event, VariableStore& local, VariableStore& global,
          MachineInstance& instance)
      : event_(event), local_(local), global_(global), instance_(instance) {}

  const Event& event() const { return event_; }
  const VariableStore& local() const { return local_; }
  const VariableStore& global() const { return global_; }
  VariableStore& mutable_local() { return local_; }
  VariableStore& mutable_global() { return global_; }

  // --- Action-side effects (routed through the owning instance) ---
  /// c!event: enqueue `event` on the named output channel.
  void Emit(std::string_view channel, Event event);
  /// Starts (or restarts) a named timer on this machine.
  void StartTimer(std::string_view name, sim::Duration after);
  void CancelTimer(std::string_view name);
  /// Current simulated time, for predicates that reason about rates.
  sim::Time Now() const;

 private:
  const Event& event_;
  VariableStore& local_;
  VariableStore& global_;
  MachineInstance& instance_;
};

using Predicate = std::function<bool(const Context&)>;
using Action = std::function<void(Context&)>;

struct Transition {
  StateId from = kInvalidState;
  std::string event_name;
  Predicate predicate;  // null → "else": taken only if no predicated
                        // sibling transition is enabled
  Action action;        // null → no-op
  StateId to = kInvalidState;
  std::string label;    // human-readable, for traces and alerts
};

/// The shared, immutable definition of one protocol or attack-pattern EFSM.
class MachineDef {
 public:
  explicit MachineDef(std::string name) : name_(std::move(name)) {}

  /// Adds a state. The first kInitial state added becomes the start state.
  StateId AddState(std::string name, StateKind kind = StateKind::kNormal);

  /// Fluent transition builder:
  ///   def.On(s0, "SIP Packet").When(pred).Do(action).To(s1, "label");
  class TransitionBuilder {
   public:
    TransitionBuilder& When(Predicate predicate) {
      transition_.predicate = std::move(predicate);
      return *this;
    }
    TransitionBuilder& Do(Action action) {
      transition_.action = std::move(action);
      return *this;
    }
    /// Finalizes the transition. `label` defaults to "from--event-->to".
    void To(StateId to, std::string label = {});

   private:
    friend class MachineDef;
    TransitionBuilder(MachineDef& def, StateId from, std::string event_name)
        : def_(def) {
      transition_.from = from;
      transition_.event_name = std::move(event_name);
    }
    MachineDef& def_;
    Transition transition_;
  };

  TransitionBuilder On(StateId from, std::string event_name) {
    return TransitionBuilder(*this, from, std::move(event_name));
  }

  /// Specification machines report unmatched events as deviations (anomaly
  /// evidence); attack-pattern machines set this false — for them a
  /// non-match just means "not this attack".
  void set_report_deviations(bool report) { report_deviations_ = report; }
  bool report_deviations() const { return report_deviations_; }

  const std::string& name() const { return name_; }
  StateId initial_state() const { return initial_; }
  size_t state_count() const { return states_.size(); }
  std::string_view StateName(StateId id) const { return states_.at(id).name; }
  StateKind Kind(StateId id) const { return states_.at(id).kind; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Transitions leaving `from` on `event_name`, in definition order, as a
  /// view into the compiled candidate table. Sets `in_alphabet` to false
  /// when `event_name` appears nowhere in the definition (the span is then
  /// empty). The view is invalidated by any mutation of the definition.
  std::span<const Transition* const> CandidatesFor(
      StateId from, std::string_view event_name, bool& in_alphabet) const;

  /// Copying convenience wrapper over CandidatesFor.
  std::vector<const Transition*> Candidates(StateId from,
                                            std::string_view event_name) const;

  /// Renders the machine as a Graphviz digraph: initial state with a bold
  /// border, attack states filled red, final states double-circled, edges
  /// labeled "event [label]". This regenerates the paper's Figures 2/4/5/6
  /// from the executable definitions.
  std::string ToDot() const;

  /// Static well-formedness findings, one message per problem:
  ///  * states unreachable from the initial state
  ///  * transitions out of final states (dead by construction)
  ///  * non-initial states with no outgoing transitions that are neither
  ///    final nor attack (traps that can never retire)
  /// An empty result means the definition is plausible; it is advisory —
  /// predicates are opaque, so reachability is structural only.
  std::vector<std::string> Validate() const;

 private:
  friend class TransitionBuilder;
  struct State {
    std::string name;
    StateKind kind;
  };

  /// Compiled dispatch tables, built lazily on first delivery and discarded
  /// whenever the definition mutates. `event_names` owns the alphabet;
  /// `event_index` keys on views into it (the vector is reserved up front so
  /// the views stay stable). `slots[state * num_events + event]` is the
  /// [begin, end) range of `candidates` for that pair, preserving
  /// definition order. `alphabet_bloom` has bit hash(name)%64 set for every
  /// alphabet member — one AND rejects most foreign events without a hash
  /// table probe.
  struct Compiled {
    std::vector<std::string> event_names;
    std::unordered_map<std::string_view, uint32_t> event_index;
    uint64_t alphabet_bloom = 0;
    std::vector<const Transition*> candidates;
    std::vector<std::pair<uint32_t, uint32_t>> slots;
  };
  void EnsureCompiled() const;

  std::string name_;
  std::vector<State> states_;
  std::vector<Transition> transitions_;
  StateId initial_ = kInvalidState;
  bool report_deviations_ = true;
  mutable Compiled compiled_;
  mutable bool compiled_valid_ = false;
};

}  // namespace vids::efsm
