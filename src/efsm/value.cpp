#include "efsm/value.h"

namespace vids::efsm {

namespace {
const Value kUnset{};
}

std::string ToString(const Value& value) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<unset>"; }
    std::string operator()(int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return std::to_string(v); }
    std::string operator()(const std::string& v) const { return v; }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
  };
  return std::visit(Visitor{}, value);
}

void VariableStore::Set(std::string_view name, Value value) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    values_.emplace(std::string(name), std::move(value));
  } else {
    it->second = std::move(value);
  }
}

const Value& VariableStore::Get(std::string_view name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? kUnset : it->second;
}

bool VariableStore::Has(std::string_view name) const {
  return values_.contains(name);
}

void VariableStore::Erase(std::string_view name) {
  const auto it = values_.find(name);
  if (it != values_.end()) values_.erase(it);
}

std::optional<int64_t> VariableStore::GetInt(std::string_view name) const {
  const auto* v = std::get_if<int64_t>(&Get(name));
  return v ? std::optional<int64_t>(*v) : std::nullopt;
}

std::optional<double> VariableStore::GetDouble(std::string_view name) const {
  const auto* v = std::get_if<double>(&Get(name));
  return v ? std::optional<double>(*v) : std::nullopt;
}

std::optional<std::string> VariableStore::GetString(
    std::string_view name) const {
  const auto* v = std::get_if<std::string>(&Get(name));
  return v ? std::optional<std::string>(*v) : std::nullopt;
}

std::optional<bool> VariableStore::GetBool(std::string_view name) const {
  const auto* v = std::get_if<bool>(&Get(name));
  return v ? std::optional<bool>(*v) : std::nullopt;
}

size_t VariableStore::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [name, value] : values_) {
    bytes += sizeof(std::pair<std::string, Value>) + name.capacity();
    if (const auto* s = std::get_if<std::string>(&value)) {
      bytes += s->capacity();
    }
    bytes += 3 * sizeof(void*);  // red-black tree node overhead (approx.)
  }
  return bytes;
}

}  // namespace vids::efsm
