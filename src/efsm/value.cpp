#include "efsm/value.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace vids::efsm {

namespace {

const Value kUnset{};

// Append-only intern pool, shared by every engine in the process (ArgKey
// ids cross thread boundaries: a shard worker's hook events are decoded by
// the sharded coordinator). Readers are lock-free: lookup probes an
// open-addressing table of entry pointers published with release stores,
// so the single-threaded per-packet path pays no lock. Writers (first
// intern of a new name — cold, names are static spellings in code)
// serialize on a mutex. A deque keeps entry addresses stable; slots are
// never emptied, so a reader that hits nullptr has seen every entry
// published before its probe began and falls through to the write path.
// Meyers singleton: safe to intern from static initializers of other
// translation units.
constexpr size_t kMaxKeys = 4096;
constexpr size_t kTableSize = 8192;  // power of two, 2x keys keeps probes short

struct InternEntry {
  std::string name;
  uint16_t id;
};

struct ArgKeyPool {
  std::atomic<InternEntry*> slots[kTableSize] = {};
  std::atomic<InternEntry*> by_id[kMaxKeys] = {};
  std::mutex write_mu;
  std::deque<InternEntry> storage;  // guarded by write_mu
};

ArgKeyPool& Pool() {
  static ArgKeyPool pool;
  return pool;
}

size_t ProbeStart(std::string_view name) {
  return std::hash<std::string_view>{}(name) & (kTableSize - 1);
}

InternEntry* FindPublished(ArgKeyPool& pool, std::string_view name,
                           size_t& probe) {
  probe = ProbeStart(name);
  for (;;) {
    InternEntry* entry = pool.slots[probe].load(std::memory_order_acquire);
    if (entry == nullptr) return nullptr;
    if (entry->name == name) return entry;
    probe = (probe + 1) & (kTableSize - 1);
  }
}

}  // namespace

ArgKey ArgKey::Intern(std::string_view name) {
  ArgKeyPool& pool = Pool();
  size_t probe = 0;
  if (const InternEntry* entry = FindPublished(pool, name, probe)) {
    return ArgKey(entry->id);
  }
  std::lock_guard<std::mutex> lock(pool.write_mu);
  // Re-probe under the lock: another thread may have interned `name`
  // between the lock-free miss and lock acquisition.
  if (const InternEntry* entry = FindPublished(pool, name, probe)) {
    return ArgKey(entry->id);
  }
  if (pool.storage.size() >= kMaxKeys) {
    throw std::length_error("ArgKey: intern pool exhausted");
  }
  const auto id = static_cast<uint16_t>(pool.storage.size());
  InternEntry& stored = pool.storage.emplace_back(
      InternEntry{std::string(name), id});
  pool.by_id[id].store(&stored, std::memory_order_release);
  pool.slots[probe].store(&stored, std::memory_order_release);
  return ArgKey(id);
}

std::string_view ArgKey::name() const {
  if (!valid()) return "<invalid>";
  return NameOfId(id_);
}

std::string_view ArgKey::NameOfId(uint16_t id) {
  if (id >= kMaxKeys) return "<invalid>";
  const InternEntry* entry = Pool().by_id[id].load(std::memory_order_acquire);
  return entry ? std::string_view(entry->name) : "<invalid>";
}

std::string ToString(const Value& value) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<unset>"; }
    std::string operator()(int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return std::to_string(v); }
    std::string operator()(const std::string& v) const { return v; }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
  };
  return std::visit(Visitor{}, value);
}

// ------------------------------------------------------------ EventArgs

EventArgs::EventArgs(const EventArgs& other) : size_(other.size_) {
  if (other.spilled()) {
    heap_ = other.heap_;
  } else {
    for (uint32_t i = 0; i < size_; ++i) inline_[i] = other.inline_[i];
  }
}

EventArgs::EventArgs(EventArgs&& other) noexcept : size_(other.size_) {
  if (other.spilled()) {
    heap_ = std::move(other.heap_);
  } else {
    for (uint32_t i = 0; i < size_; ++i) {
      inline_[i] = std::move(other.inline_[i]);
    }
  }
  other.size_ = 0;
  other.heap_.clear();
}

EventArgs& EventArgs::operator=(const EventArgs& other) {
  if (this == &other) return *this;
  clear();
  size_ = other.size_;
  if (other.spilled()) {
    heap_ = other.heap_;
  } else {
    for (uint32_t i = 0; i < size_; ++i) inline_[i] = other.inline_[i];
  }
  return *this;
}

EventArgs& EventArgs::operator=(EventArgs&& other) noexcept {
  if (this == &other) return *this;
  clear();
  size_ = other.size_;
  if (other.spilled()) {
    heap_ = std::move(other.heap_);
  } else {
    for (uint32_t i = 0; i < size_; ++i) {
      inline_[i] = std::move(other.inline_[i]);
    }
  }
  other.size_ = 0;
  other.heap_.clear();
  return *this;
}

Value& EventArgs::operator[](ArgKey key) {
  Entry* entries = data();
  for (uint32_t i = 0; i < size_; ++i) {
    if (entries[i].key == key) return entries[i].value;
  }
  if (size_ < kInlineCapacity) {
    inline_[size_].key = key;
    inline_[size_].value = std::monostate{};
    return inline_[size_++].value;
  }
  if (size_ == kInlineCapacity) {
    // Spill: move everything so iteration stays one contiguous scan.
    heap_.reserve(kInlineCapacity * 2);
    for (Entry& entry : inline_) heap_.push_back(std::move(entry));
  }
  heap_.push_back(Entry{key, std::monostate{}});
  ++size_;
  return heap_.back().value;
}

const Value* EventArgs::Find(ArgKey key) const {
  const Entry* entries = data();
  for (uint32_t i = 0; i < size_; ++i) {
    if (entries[i].key == key) return &entries[i].value;
  }
  return nullptr;
}

void EventArgs::clear() {
  if (!spilled()) {
    for (uint32_t i = 0; i < size_; ++i) inline_[i].value = std::monostate{};
  }
  heap_.clear();
  size_ = 0;
}

size_t EventArgs::MemoryBytes() const {
  size_t bytes = heap_.capacity() * sizeof(Entry);
  for (const Entry& entry : *this) {
    if (const auto* s = std::get_if<std::string>(&entry.value)) {
      bytes += s->capacity();
    }
  }
  return bytes;
}

// -------------------------------------------------------- VariableStore

void VariableStore::Set(ArgKey key, Value value) {
  for (auto& [existing, stored] : values_) {
    if (existing == key) {
      stored = std::move(value);
      return;
    }
  }
  // A scope holds ~10 variables at steady state (TAB-MEM); one up-front
  // reservation replaces the doubling growth a fresh call would otherwise
  // pay while its first INVITE populates every scope.
  if (values_.capacity() == 0) values_.reserve(8);
  values_.emplace_back(key, std::move(value));
}

const Value& VariableStore::Get(ArgKey key) const {
  for (const auto& [existing, stored] : values_) {
    if (existing == key) return stored;
  }
  return kUnset;
}

bool VariableStore::Has(ArgKey key) const {
  for (const auto& [existing, stored] : values_) {
    if (existing == key) return true;
  }
  return false;
}

void VariableStore::Erase(ArgKey key) {
  for (auto it = values_.begin(); it != values_.end(); ++it) {
    if (it->first == key) {
      values_.erase(it);
      return;
    }
  }
}

std::optional<int64_t> VariableStore::GetInt(ArgKey key) const {
  const auto* v = std::get_if<int64_t>(&Get(key));
  return v ? std::optional<int64_t>(*v) : std::nullopt;
}

std::optional<double> VariableStore::GetDouble(ArgKey key) const {
  const auto* v = std::get_if<double>(&Get(key));
  return v ? std::optional<double>(*v) : std::nullopt;
}

std::optional<std::string> VariableStore::GetString(ArgKey key) const {
  const auto* v = std::get_if<std::string>(&Get(key));
  return v ? std::optional<std::string>(*v) : std::nullopt;
}

std::optional<bool> VariableStore::GetBool(ArgKey key) const {
  const auto* v = std::get_if<bool>(&Get(key));
  return v ? std::optional<bool>(*v) : std::nullopt;
}

size_t VariableStore::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += values_.capacity() * sizeof(std::pair<ArgKey, Value>);
  for (const auto& [key, value] : values_) {
    if (const auto* s = std::get_if<std::string>(&value)) {
      bytes += s->capacity();
    }
  }
  return bytes;
}

}  // namespace vids::efsm
