#include "efsm/machine.h"

#include <deque>
#include <set>
#include <sstream>
#include <stdexcept>

namespace vids::efsm {

std::string TimerEventName(std::string_view timer_name) {
  return "timer:" + std::string(timer_name);
}

StateId MachineDef::AddState(std::string name, StateKind kind) {
  const StateId id = static_cast<StateId>(states_.size());
  states_.push_back(State{std::move(name), kind});
  if (kind == StateKind::kInitial && initial_ == kInvalidState) {
    initial_ = id;
  }
  compiled_valid_ = false;
  return id;
}

void MachineDef::TransitionBuilder::To(StateId to, std::string label) {
  transition_.to = to;
  if (transition_.from == kInvalidState || to == kInvalidState ||
      static_cast<size_t>(transition_.from) >= def_.states_.size() ||
      static_cast<size_t>(to) >= def_.states_.size()) {
    throw std::invalid_argument(def_.name_ + ": transition between unknown states");
  }
  if (label.empty()) {
    label = std::string(def_.StateName(transition_.from)) + "--" +
            transition_.event_name + "-->" +
            std::string(def_.StateName(to));
  }
  transition_.label = std::move(label);
  def_.transitions_.push_back(std::move(transition_));
  def_.compiled_valid_ = false;
}

void MachineDef::EnsureCompiled() const {
  if (compiled_valid_) return;
  Compiled c;
  // Reserved up front so the string_view keys into event_names never move.
  c.event_names.reserve(transitions_.size());
  for (const auto& transition : transitions_) {
    if (c.event_index.contains(transition.event_name)) continue;
    const auto idx = static_cast<uint32_t>(c.event_names.size());
    const std::string& stored = c.event_names.emplace_back(
        transition.event_name);
    c.event_index.emplace(std::string_view(stored), idx);
    c.alphabet_bloom |=
        uint64_t{1} << (std::hash<std::string_view>{}(stored) & 63);
  }
  const size_t num_events = c.event_names.size();
  c.slots.assign(states_.size() * num_events, {0, 0});
  c.candidates.reserve(transitions_.size());
  for (size_t state = 0; state < states_.size(); ++state) {
    for (size_t event = 0; event < num_events; ++event) {
      const auto begin = static_cast<uint32_t>(c.candidates.size());
      for (const auto& transition : transitions_) {
        if (static_cast<size_t>(transition.from) == state &&
            transition.event_name == c.event_names[event]) {
          c.candidates.push_back(&transition);
        }
      }
      c.slots[state * num_events + event] = {
          begin, static_cast<uint32_t>(c.candidates.size())};
    }
  }
  compiled_ = std::move(c);
  compiled_valid_ = true;
}

std::span<const Transition* const> MachineDef::CandidatesFor(
    StateId from, std::string_view event_name, bool& in_alphabet) const {
  EnsureCompiled();
  const uint64_t bit =
      uint64_t{1} << (std::hash<std::string_view>{}(event_name) & 63);
  if ((compiled_.alphabet_bloom & bit) == 0) {
    in_alphabet = false;
    return {};
  }
  const auto it = compiled_.event_index.find(event_name);
  if (it == compiled_.event_index.end()) {
    in_alphabet = false;
    return {};
  }
  in_alphabet = true;
  if (from < 0 || static_cast<size_t>(from) >= states_.size()) return {};
  const auto [begin, end] = compiled_.slots[static_cast<size_t>(from) *
                                                compiled_.event_names.size() +
                                            it->second];
  return {compiled_.candidates.data() + begin, end - begin};
}

std::vector<const Transition*> MachineDef::Candidates(
    StateId from, std::string_view event_name) const {
  bool in_alphabet = false;
  const auto span = CandidatesFor(from, event_name, in_alphabet);
  return {span.begin(), span.end()};
}

namespace {
std::string DotEscape(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string MachineDef::ToDot() const {
  std::ostringstream out;
  out << "digraph \"" << DotEscape(name_) << "\" {\n";
  out << "  rankdir=LR;\n  node [shape=ellipse, fontsize=11];\n";
  for (size_t id = 0; id < states_.size(); ++id) {
    const State& state = states_[id];
    out << "  s" << id << " [label=\"" << DotEscape(state.name) << "\"";
    switch (state.kind) {
      case StateKind::kInitial:
        out << ", penwidth=2.5";
        break;
      case StateKind::kFinal:
        out << ", peripheries=2";
        break;
      case StateKind::kAttack:
        out << ", style=filled, fillcolor=\"#e05252\", fontcolor=white";
        break;
      case StateKind::kNormal:
        break;
    }
    out << "];\n";
  }
  for (const auto& transition : transitions_) {
    out << "  s" << transition.from << " -> s" << transition.to
        << " [label=\"" << DotEscape(transition.event_name);
    if (!transition.label.empty()) {
      out << "\\n[" << DotEscape(transition.label) << "]";
    }
    if (transition.predicate) out << "\\nP(x̄,v̄)";
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::vector<std::string> MachineDef::Validate() const {
  std::vector<std::string> findings;

  // Structural reachability from the initial state.
  std::set<StateId> reachable;
  if (initial_ != kInvalidState) {
    std::deque<StateId> frontier{initial_};
    reachable.insert(initial_);
    while (!frontier.empty()) {
      const StateId current = frontier.front();
      frontier.pop_front();
      for (const auto& transition : transitions_) {
        if (transition.from == current && !reachable.contains(transition.to)) {
          reachable.insert(transition.to);
          frontier.push_back(transition.to);
        }
      }
    }
  } else {
    findings.push_back(name_ + ": no initial state");
  }

  for (size_t id = 0; id < states_.size(); ++id) {
    const State& state = states_[id];
    const auto state_id = static_cast<StateId>(id);
    if (initial_ != kInvalidState && !reachable.contains(state_id)) {
      findings.push_back(name_ + ": state '" + state.name +
                         "' unreachable from the initial state");
    }
    bool has_outgoing = false;
    for (const auto& transition : transitions_) {
      if (transition.from == state_id) {
        has_outgoing = true;
        if (state.kind == StateKind::kFinal) {
          findings.push_back(name_ + ": transition '" + transition.label +
                             "' leaves final state '" + state.name +
                             "' (dead: instances retire on entry)");
          break;
        }
      }
    }
    // Unreachable states were already reported; a trap finding on top of
    // that is noise.
    if (!has_outgoing && state.kind != StateKind::kFinal &&
        state.kind != StateKind::kAttack && state_id != initial_ &&
        reachable.contains(state_id)) {
      findings.push_back(name_ + ": state '" + state.name +
                         "' is a trap (no outgoing transitions, not final)");
    }
  }
  return findings;
}

}  // namespace vids::efsm
