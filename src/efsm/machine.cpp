#include "efsm/machine.h"

#include <deque>
#include <set>
#include <sstream>
#include <stdexcept>

namespace vids::efsm {

std::string TimerEventName(std::string_view timer_name) {
  return "timer:" + std::string(timer_name);
}

StateId MachineDef::AddState(std::string name, StateKind kind) {
  const StateId id = static_cast<StateId>(states_.size());
  states_.push_back(State{std::move(name), kind});
  if (kind == StateKind::kInitial && initial_ == kInvalidState) {
    initial_ = id;
  }
  return id;
}

void MachineDef::TransitionBuilder::To(StateId to, std::string label) {
  transition_.to = to;
  if (transition_.from == kInvalidState || to == kInvalidState ||
      static_cast<size_t>(transition_.from) >= def_.states_.size() ||
      static_cast<size_t>(to) >= def_.states_.size()) {
    throw std::invalid_argument(def_.name_ + ": transition between unknown states");
  }
  if (label.empty()) {
    label = std::string(def_.StateName(transition_.from)) + "--" +
            transition_.event_name + "-->" +
            std::string(def_.StateName(to));
  }
  transition_.label = std::move(label);
  def_.transitions_.push_back(std::move(transition_));
}

std::vector<const Transition*> MachineDef::Candidates(
    StateId from, std::string_view event_name) const {
  std::vector<const Transition*> out;
  for (const auto& transition : transitions_) {
    if (transition.from == from && transition.event_name == event_name) {
      out.push_back(&transition);
    }
  }
  return out;
}

namespace {
std::string DotEscape(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string MachineDef::ToDot() const {
  std::ostringstream out;
  out << "digraph \"" << DotEscape(name_) << "\" {\n";
  out << "  rankdir=LR;\n  node [shape=ellipse, fontsize=11];\n";
  for (size_t id = 0; id < states_.size(); ++id) {
    const State& state = states_[id];
    out << "  s" << id << " [label=\"" << DotEscape(state.name) << "\"";
    switch (state.kind) {
      case StateKind::kInitial:
        out << ", penwidth=2.5";
        break;
      case StateKind::kFinal:
        out << ", peripheries=2";
        break;
      case StateKind::kAttack:
        out << ", style=filled, fillcolor=\"#e05252\", fontcolor=white";
        break;
      case StateKind::kNormal:
        break;
    }
    out << "];\n";
  }
  for (const auto& transition : transitions_) {
    out << "  s" << transition.from << " -> s" << transition.to
        << " [label=\"" << DotEscape(transition.event_name);
    if (!transition.label.empty()) {
      out << "\\n[" << DotEscape(transition.label) << "]";
    }
    if (transition.predicate) out << "\\nP(x̄,v̄)";
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::vector<std::string> MachineDef::Validate() const {
  std::vector<std::string> findings;

  // Structural reachability from the initial state.
  std::set<StateId> reachable;
  if (initial_ != kInvalidState) {
    std::deque<StateId> frontier{initial_};
    reachable.insert(initial_);
    while (!frontier.empty()) {
      const StateId current = frontier.front();
      frontier.pop_front();
      for (const auto& transition : transitions_) {
        if (transition.from == current && !reachable.contains(transition.to)) {
          reachable.insert(transition.to);
          frontier.push_back(transition.to);
        }
      }
    }
  } else {
    findings.push_back(name_ + ": no initial state");
  }

  for (size_t id = 0; id < states_.size(); ++id) {
    const State& state = states_[id];
    const auto state_id = static_cast<StateId>(id);
    if (initial_ != kInvalidState && !reachable.contains(state_id)) {
      findings.push_back(name_ + ": state '" + state.name +
                         "' unreachable from the initial state");
    }
    bool has_outgoing = false;
    for (const auto& transition : transitions_) {
      if (transition.from == state_id) {
        has_outgoing = true;
        if (state.kind == StateKind::kFinal) {
          findings.push_back(name_ + ": transition '" + transition.label +
                             "' leaves final state '" + state.name +
                             "' (dead: instances retire on entry)");
          break;
        }
      }
    }
    // Unreachable states were already reported; a trap finding on top of
    // that is noise.
    if (!has_outgoing && state.kind != StateKind::kFinal &&
        state.kind != StateKind::kAttack && state_id != initial_ &&
        reachable.contains(state_id)) {
      findings.push_back(name_ + ": state '" + state.name +
                         "' is a trap (no outgoing transitions, not final)");
    }
  }
  return findings;
}

}  // namespace vids::efsm
