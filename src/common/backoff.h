// Spin-then-sleep backoff shared by the sharded engine's busy-wait loops.
//
// Both sides of the SPSC handoff wait the same way: a worker polling an
// empty down-ring and a worker blocked pushing into a full up-ring first
// yield for a bounded number of spins (so a message that is nanoseconds
// away is picked up with no added latency), then drop to a short sleep
// (so an idle engine does not pin a core at 100%). The spin count and the
// sleep are the two knobs; `ShardedConfig` exposes them per engine.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace vids::common {

/// Yields this many times before the first sleep.
inline constexpr int kSpinsBeforeSleep = 256;
/// Idle-sleep once spinning gives up. Short enough to stay invisible next
/// to detection windows (which are seconds), long enough to leave the core.
inline constexpr int64_t kIdleSleepMicros = 50;

class SpinBackoff {
 public:
  SpinBackoff() = default;
  SpinBackoff(int spins, int64_t sleep_micros)
      : spins_(spins), sleep_micros_(sleep_micros) {}

  /// One wait step: yield while under the spin budget, sleep past it.
  void Pause() {
    if (++idle_ < spins_) {
      std::this_thread::yield();
      return;
    }
    ++sleeps_;
    if (sleep_micros_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros_));
    } else {
      std::this_thread::yield();
    }
  }

  /// Call after useful work: the next wait starts spinning again.
  void Reset() { idle_ = 0; }

  /// Times Pause() took the sleep path since construction (observability
  /// and tests; the sharded engine folds this into its stall counters).
  uint64_t sleeps() const { return sleeps_; }

 private:
  int spins_ = kSpinsBeforeSleep;
  int64_t sleep_micros_ = kIdleSleepMicros;
  int idle_ = 0;
  uint64_t sleeps_ = 0;
};

}  // namespace vids::common
