// Fixed-slot payload arena paired 1:1 with a ring's slots.
//
// The multi-producer ingest path (src/vids/sharded_ids.*) moves datagram
// payload bytes from a producer to a shard worker through an SPSC lane. A
// naive design would keep a std::string per ring slot and assign into it;
// that works (capacity is reused across laps), but the strings' heap blocks
// land wherever the allocator put them, so a producer filling a batch and a
// worker draining one walk scattered cache lines. The arena replaces those
// scattered blocks with ONE contiguous slab per lane:
//
//  - `slots * slot_bytes` bytes, allocated once at construction. Slot i of
//    the arena belongs to slot i of the ring (same index: the producer
//    writes arena.Slot(ring.ProducerNextIndex()) right before BeginPushN,
//    the consumer reads arena.Slot(ring.ConsumerIndex(i))).
//  - A payload that fits `slot_bytes` is memcpy'd into the slab; the ring
//    message carries only its length. Oversized payloads (rare: jumbo SIP
//    bodies) fall back to the ring slot's own string — the arena is a fast
//    path, never a correctness constraint.
//  - Slot bytes are reused in place exactly like ring slots, so the
//    steady-state handoff allocates nothing and the lane's working set is
//    one slab the hardware prefetcher can follow.
//
// Synchronization is inherited from the paired ring: the producer writes a
// slot strictly before CommitPushN's release store publishes the owning
// ring index, and the consumer reads it only after FrontN's acquire load —
// the same happens-before edge that covers the ring slot covers the arena
// slot. The arena itself holds no atomics.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

namespace vids::common {

class PayloadArena {
 public:
  /// `slots` should equal the paired ring's capacity(); `slot_bytes` is the
  /// largest payload stored inline (larger ones take the caller's fallback
  /// path). slot_bytes == 0 disables the arena (Fits() is always false).
  PayloadArena(size_t slots, size_t slot_bytes)
      : slot_bytes_(slot_bytes), bytes_(slots * slot_bytes) {}

  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  size_t slot_bytes() const { return slot_bytes_; }
  bool Fits(size_t n) const { return n <= slot_bytes_ && slot_bytes_ != 0; }

  /// Copies `n` bytes (n must satisfy Fits) into slot `index`.
  void Store(size_t index, const char* data, size_t n) {
    std::memcpy(bytes_.data() + index * slot_bytes_, data, n);
  }

  /// The slot's bytes; valid until the paired ring slot is reused.
  const char* Slot(size_t index) const {
    return bytes_.data() + index * slot_bytes_;
  }

  /// Slab footprint, for MemoryBytes() accounting.
  size_t MemoryBytes() const { return bytes_.capacity(); }

 private:
  size_t slot_bytes_;
  std::vector<char> bytes_;
};

}  // namespace vids::common
