#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace vids::common {

namespace {
bool IsLws(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }
char LowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string_view Trim(std::string_view s) {
  while (!s.empty() && IsLws(s.front())) s.remove_prefix(1);
  while (!s.empty() && IsLws(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(Trim(s.substr(start)));
      return out;
    }
    out.push_back(Trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
}

std::optional<std::pair<std::string_view, std::string_view>> SplitOnce(
    std::string_view s, char sep) {
  size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return std::nullopt;
  return std::pair{Trim(s.substr(0, pos)), Trim(s.substr(pos + 1))};
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerAscii);
  return out;
}

void AsciiLowerInPlace(std::string& s) {
  std::transform(s.begin(), s.end(), s.begin(), LowerAscii);
}

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
    return LowerAscii(x) == LowerAscii(y);
  });
}

bool IStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && IEquals(s.substr(0, prefix.size()), prefix);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace vids::common
