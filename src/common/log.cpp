#include "common/log.h"

#include <cstdio>

namespace vids::common {

namespace {
LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;  // empty → stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::SetLevel(LogLevel level) { g_level = level; }
LogLevel Log::Level() { return g_level; }
void Log::SetSink(Sink sink) { g_sink = std::move(sink); }

void Log::Write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace vids::common
