#include "common/log.h"

#include <cstdio>

namespace vids::common {

namespace {
LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;    // empty → stderr
Log::Clock g_clock;  // empty → no time prefix

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::SetLevel(LogLevel level) { g_level = level; }
LogLevel Log::Level() { return g_level; }
void Log::SetSink(Sink sink) { g_sink = std::move(sink); }
void Log::SetClock(Clock clock) { g_clock = std::move(clock); }

void Log::Write(LogLevel level, const std::string& message) {
  Write(level, std::string_view(), message);
}

void Log::Write(LogLevel level, std::string_view component,
                const std::string& message) {
  if (level < g_level) return;
  // Decorate once, up front, so custom sinks and the stderr default agree
  // on what a line looks like.
  std::string decorated;
  const std::string* out = &message;
  if (g_clock || !component.empty()) {
    decorated.reserve(message.size() + component.size() + 24);
    if (g_clock) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "[t=%.6fs] ",
                    static_cast<double>(g_clock()) * 1e-9);
      decorated += buf;
    }
    if (!component.empty()) {
      decorated += '[';
      decorated += component;
      decorated += "] ";
    }
    decorated += message;
    out = &decorated;
  }
  if (g_sink) {
    // Run on a copy: a sink that calls SetSink from inside its own
    // invocation (tests installing a one-shot sink, a sink removing itself
    // mid-run) would otherwise destroy the std::function it is executing.
    const Sink sink = g_sink;
    sink(level, *out);
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), out->c_str());
  }
}

}  // namespace vids::common
