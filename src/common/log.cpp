#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace vids::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes decorate+sink so concurrent worker-thread writes cannot
// interleave bytes or race the installed sink/clock std::functions.
std::mutex g_mutex;
Log::Sink g_sink;    // empty → stderr
Log::Clock g_clock;  // empty → no time prefix

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::SetLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::Level() { return g_level.load(std::memory_order_relaxed); }
void Log::SetSink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}
void Log::SetClock(Clock clock) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_clock = std::move(clock);
}

void Log::Write(LogLevel level, const std::string& message) {
  Write(level, std::string_view(), message);
}

void Log::Write(LogLevel level, std::string_view component,
                const std::string& message) {
  if (level < Level()) return;
  // Decorate once, up front, so custom sinks and the stderr default agree
  // on what a line looks like.
  std::string decorated;
  const std::string* out = &message;
  Sink sink;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (g_clock || !component.empty()) {
      decorated.reserve(message.size() + component.size() + 24);
      if (g_clock) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "[t=%.6fs] ",
                      static_cast<double>(g_clock()) * 1e-9);
        decorated += buf;
      }
      if (!component.empty()) {
        decorated += '[';
        decorated += component;
        decorated += "] ";
      }
      decorated += message;
      out = &decorated;
    }
    if (!g_sink) {
      // Default path emits under the lock, so concurrent worker-thread
      // lines cannot interleave bytes on stderr.
      std::fprintf(stderr, "[%s] %s\n", LevelName(level), out->c_str());
      return;
    }
    // Run on a copy, invoked outside the lock: a sink that calls SetSink
    // from inside its own invocation (tests installing a one-shot sink, a
    // sink removing itself mid-run) would otherwise destroy the
    // std::function it is executing — or deadlock on g_mutex. A custom
    // sink shared by worker threads must be thread-safe itself.
    sink = g_sink;
  }
  sink(level, *out);
}

}  // namespace vids::common
