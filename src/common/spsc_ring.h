// Single-producer / single-consumer lock-free ring buffer.
//
// The sharded IDS engine (src/vids/sharded_ids.*) moves packets from the
// router thread to each shard worker — and alerts/aggregate events back —
// over exactly-one-writer/exactly-one-reader queues, so the classic SPSC
// ring with release/acquire index handoff is all the synchronization the
// data plane needs. Design points:
//
//  - Fixed power-of-two capacity, allocated once at construction. The hot
//    path never allocates; a full ring is backpressure, not growth.
//  - In-place slot construction: the producer calls BeginPush() to get a
//    pointer at the reserved slot, *reuses* whatever the slot already holds
//    (a Datagram's payload string keeps its capacity across laps — this is
//    what keeps the steady-state ingest path allocation-free), then
//    CommitPush() publishes it. The consumer mirrors with Front()/Pop().
//  - head_ (consumer-owned) and tail_ (producer-owned) live on separate
//    cache lines; each side keeps a cached copy of the other's index and
//    only re-reads the shared atomic when the cache says full/empty, so an
//    uncontended push or pop is one relaxed load + one release store.
//
// Memory ordering: CommitPush stores tail_ with release; Front loads it
// with acquire. Everything the producer wrote before the commit — the slot
// contents AND any relaxed-atomic side state (per-shard metric counters,
// the worker's frontier timestamp) — is therefore visible to the consumer
// after it observes the new tail. Pop stores head_ with release so the
// producer's acquire re-read knows the slot is reusable. This pairing is
// the happens-before edge the whole sharded engine leans on; see
// DESIGN.md §11.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace vids::common {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2). The ring holds
  /// at most `capacity` elements; slots are default-constructed up front.
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Producer: reserve the next slot for writing, or nullptr if the ring is
  /// full. The returned slot retains its previous contents (reuse its
  /// buffers instead of reassigning fresh ones). Call CommitPush() to
  /// publish; until then the consumer cannot see the slot.
  T* BeginPush() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return nullptr;  // full
    }
    return &slots_[tail & mask_];
  }

  /// Producer: publish the slot handed out by the last BeginPush().
  void CommitPush() {
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Consumer: peek the oldest element, or nullptr if the ring is empty.
  /// The element stays valid until Pop().
  T* Front() {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;  // empty
    }
    return &slots_[head & mask_];
  }

  /// Consumer: release the slot returned by Front(). The element is NOT
  /// destroyed — the producer will reuse it in place on a later lap.
  void Pop() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Approximate occupancy; exact only from the producer or consumer thread.
  size_t SizeApprox() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;

  // Consumer-owned index + the producer's cached copy of it.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) size_t head_cache_ = 0;   // producer-local
  // Producer-owned index + the consumer's cached copy of it.
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) size_t tail_cache_ = 0;   // consumer-local
};

}  // namespace vids::common
