// Single-producer / single-consumer lock-free ring buffer.
//
// The sharded IDS engine (src/vids/sharded_ids.*) moves packets from the
// router thread to each shard worker — and alerts/aggregate events back —
// over exactly-one-writer/exactly-one-reader queues, so the classic SPSC
// ring with release/acquire index handoff is all the synchronization the
// data plane needs. Design points:
//
//  - Fixed power-of-two capacity, allocated once at construction. The hot
//    path never allocates; a full ring is backpressure, not growth.
//  - In-place slot construction: the producer calls BeginPush() to get a
//    pointer at the reserved slot, *reuses* whatever the slot already holds
//    (a Datagram's payload string keeps its capacity across laps — this is
//    what keeps the steady-state ingest path allocation-free), then
//    CommitPush() publishes it. The consumer mirrors with Front()/Pop().
//  - head_ (consumer-owned) and tail_ (producer-owned) live on separate
//    cache lines; each side keeps a cached copy of the other's index and
//    only re-reads the shared atomic when the cache says full/empty, so an
//    uncontended push or pop is one relaxed load + one release store.
//
// Memory ordering: CommitPush stores tail_ with release; Front loads it
// with acquire. Everything the producer wrote before the commit — the slot
// contents AND any relaxed-atomic side state (per-shard metric counters,
// the worker's frontier timestamp) — is therefore visible to the consumer
// after it observes the new tail. Pop stores head_ with release so the
// producer's acquire re-read knows the slot is reusable. This pairing is
// the happens-before edge the whole sharded engine leans on; see
// DESIGN.md §11.
//
// Batched operations (DESIGN.md §12): the producer can reserve several
// slots with repeated BeginPushN() calls and publish them all with a
// single CommitPushN() — one release store for the whole batch. The
// consumer mirrors with FrontN()/At()/PopN(): one acquire load exposes up
// to K items, one release store retires them. Per-slot cost of the index
// handoff therefore drops from one acquire/release pair per element to
// one pair per batch. The single-element Begin/Commit/Front/Pop are the
// K = 1 case of the same machinery, so single and batched calls can be
// interleaved freely from the owning thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace vids::common {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2). The ring holds
  /// at most `capacity` elements; slots are default-constructed up front.
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // ---- producer side ----

  /// Reserve the next slot after any still-unpublished batch slots, or
  /// nullptr if the ring (counting the open batch) is full. The returned
  /// slot retains its previous contents (reuse its buffers instead of
  /// reassigning fresh ones). Nothing is visible to the consumer until
  /// CommitPushN() publishes the whole open batch.
  T* BeginPushN() {
    const size_t tail = tail_.load(std::memory_order_relaxed) + pending_;
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return nullptr;  // full
    }
    ++pending_;
    return &slots_[tail & mask_];
  }

  /// Publish every slot reserved since the last commit: one release store
  /// regardless of batch size. No-op when the batch is empty.
  void CommitPushN() {
    if (pending_ == 0) return;
    tail_.store(tail_.load(std::memory_order_relaxed) + pending_,
                std::memory_order_release);
    pending_ = 0;
  }

  /// Slots reserved but not yet published (producer-side view).
  size_t open_push() const { return pending_; }

  /// Producer: reserve the next slot for writing, or nullptr if the ring is
  /// full. Single-slot case of BeginPushN(); CommitPush() publishes it.
  T* BeginPush() { return BeginPushN(); }

  /// Absolute slot index the NEXT BeginPushN() would hand out (producer
  /// thread only). Lets a producer address side-band storage paired 1:1
  /// with the ring's slots (a PayloadArena slab) before reserving the slot.
  size_t ProducerNextIndex() const {
    return (tail_.load(std::memory_order_relaxed) + pending_) & mask_;
  }

  /// Producer: publish the open batch (for single-slot use, exactly the
  /// slot handed out by the last BeginPush()).
  void CommitPush() { CommitPushN(); }

  // ---- consumer side ----

  /// Number of items ready to read, capped at `max`. Re-reads the shared
  /// tail only when the cached copy cannot already satisfy `max`, so a
  /// consumer draining K at a time pays one acquire load per batch.
  size_t FrontN(size_t max) {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t avail = tail_cache_ - head;
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
    }
    return avail < max ? avail : max;
  }

  /// The i-th oldest readable element; `i` must be < the last FrontN()
  /// result. Valid until PopN() retires it.
  T& At(size_t i) {
    return slots_[(head_.load(std::memory_order_relaxed) + i) & mask_];
  }

  /// Absolute slot index of At(i) (consumer thread only) — the consumer
  /// half of the ProducerNextIndex() side-band pairing.
  size_t ConsumerIndex(size_t i) const {
    return (head_.load(std::memory_order_relaxed) + i) & mask_;
  }

  /// Consumer: retire the oldest `n` elements with one release store. The
  /// elements are NOT destroyed — the producer reuses them in place.
  void PopN(size_t n) {
    head_.store(head_.load(std::memory_order_relaxed) + n,
                std::memory_order_release);
  }

  /// Consumer: peek the oldest element, or nullptr if the ring is empty.
  /// The element stays valid until Pop().
  T* Front() { return FrontN(1) != 0 ? &At(0) : nullptr; }

  /// Consumer: release the slot returned by Front().
  void Pop() { PopN(1); }

  /// Approximate occupancy; exact only from the producer or consumer thread.
  size_t SizeApprox() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  /// Occupancy as the producer sees it, counting the open (uncommitted)
  /// batch. Producer thread only. May overestimate — head_cache_ refreshes
  /// lazily — which is the right bias for a high-water-mark gauge: depth is
  /// never under-reported. The stale cache is bounded here: an apparent
  /// size above capacity refreshes head_cache_ first, so a per-lane gauge
  /// read by a producer that never hit backpressure (the common multi-lane
  /// ingest case — each lane sees a fraction of the traffic and rarely
  /// fills) can no longer report a many-lap phantom depth.
  size_t SizeFromProducer() {
    const size_t tail = tail_.load(std::memory_order_relaxed) + pending_;
    if (tail - head_cache_ > mask_ + 1) {
      head_cache_ = head_.load(std::memory_order_acquire);
    }
    return tail - head_cache_;
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;

  // Consumer-owned index + the producer's cached copy of it.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) size_t head_cache_ = 0;   // producer-local
  size_t pending_ = 0;                  // producer-local: open-batch size
  // Producer-owned index + the consumer's cached copy of it.
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) size_t tail_cache_ = 0;   // consumer-local
};

}  // namespace vids::common
