#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace vids::common {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t HashName(uint64_t seed, std::string_view name) {
  uint64_t h = 0xCBF29CE484222325ULL ^ seed;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Stream::Stream(uint64_t master_seed, std::string_view name) {
  origin_ = HashName(master_seed, name);
  uint64_t x = origin_;
  for (auto& s : state_) s = SplitMix64(x);
}

Stream::Stream(uint64_t s0, uint64_t s1, uint64_t s2, uint64_t s3)
    : state_{s0, s1, s2, s3}, origin_(s0 ^ s1 ^ s2 ^ s3) {}

uint64_t Stream::Next() {
  uint64_t* s = state_;
  const uint64_t result = Rotl(s[0] + s[3], 23) + s[0];
  const uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = Rotl(s[3], 45);
  return result;
}

double Stream::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Stream::NextInRange(uint64_t lo, uint64_t hi) {
  const uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~0ULL) - (~0ULL) % span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + v % span;
}

double Stream::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Stream::NextBernoulli(double p) { return NextDouble() < p; }

double Stream::NextNormal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

Stream Stream::Fork(std::string_view child_name) const {
  uint64_t x = HashName(origin_, child_name);
  uint64_t s0 = SplitMix64(x), s1 = SplitMix64(x), s2 = SplitMix64(x),
           s3 = SplitMix64(x);
  return Stream(s0, s1, s2, s3);
}

}  // namespace vids::common
