// String utilities shared by the text-protocol parsers (SIP, SDP).
//
// SIP (RFC 3261) is case-insensitive in header field names and many token
// values, and its grammar leans heavily on linear-white-space trimming; the
// helpers here implement those primitives once so the parsers stay readable.
#pragma once

#include <charconv>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vids::common {

/// Returns `s` with ASCII whitespace (SP, HTAB, CR, LF) removed from both ends.
std::string_view Trim(std::string_view s);

/// Splits `s` on `sep`, trimming each piece. Empty pieces are kept so that
/// positional grammars (e.g. SDP "o=" lines) can detect missing fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits on the first occurrence of `sep` only. Returns nullopt if absent.
std::optional<std::pair<std::string_view, std::string_view>> SplitOnce(
    std::string_view s, char sep);

/// ASCII lower-casing (locale independent, as required by RFC 3261 §7.3.1).
std::string ToLower(std::string_view s);

/// In-place ASCII lower-casing — no temporary string.
void AsciiLowerInPlace(std::string& s);

/// Transparent hash for unordered containers keyed by std::string that want
/// heterogeneous (string_view) lookup without materializing a key string.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Case-insensitive comparison for header names and tokens.
bool IEquals(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`, compared case-insensitively.
bool IStartsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative decimal integer occupying the whole of `s`.
template <typename Int>
std::optional<Int> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  Int value{};
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Joins `parts` with `sep` — the inverse of Split for serializers.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace vids::common
