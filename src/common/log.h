// Minimal leveled logger.
//
// The simulator and vIDS components log through this sink so tests can
// silence output and examples can show protocol traces. Write() is
// thread-safe: shard worker threads log alerts concurrently, so the
// decorate+sink section is serialized by a mutex and the level check is a
// relaxed atomic (the disabled-level fast path takes no lock). Installed
// sinks and clocks must themselves tolerate being called under that lock
// from any thread. SetLevel/SetSink/SetClock remain configuration-time
// calls — make them before worker threads start.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace vids::common {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration. Defaults: level = kWarn, sink = stderr.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;
  /// Returns "now" in nanoseconds. Kept as raw int64 so common/ stays
  /// independent of sim/ — the simulator installs `scheduler.Now().nanos()`.
  using Clock = std::function<int64_t()>;

  static void SetLevel(LogLevel level);
  static LogLevel Level();
  /// Replaces the output sink; pass nullptr to restore the stderr default.
  /// Safe to call from inside a sink invocation: Write finishes the
  /// in-flight call on a copy, so a sink may replace (or remove) itself.
  static void SetSink(Sink sink);
  /// Installs the time source used to prefix every line with "[t=X.XXs]".
  /// Pass nullptr to drop the prefix (e.g. when a scheduler dies before
  /// process exit — a dangling clock would crash the next log line).
  static void SetClock(Clock clock);
  static void Write(LogLevel level, const std::string& message);
  /// Tagged variant: the line is prefixed with "[component]".
  static void Write(LogLevel level, std::string_view component,
                    const std::string& message);
  static bool Enabled(LogLevel level) { return level >= Level(); }
};

namespace log_detail {
class Line {
 public:
  explicit Line(LogLevel level) : level_(level) {}
  Line(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~Line() { Log::Write(level_, component_, stream_.str()); }
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;
  template <typename T>
  Line& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;  // literal lifetime at every call site
  std::ostringstream stream_;
};
}  // namespace log_detail

}  // namespace vids::common

#define VIDS_LOG(level)                                       \
  if (!::vids::common::Log::Enabled(level)) {                 \
  } else                                                      \
    ::vids::common::log_detail::Line(level)

/// Component-tagged variant: VIDS_INFO_C("sip") << ...;
#define VIDS_LOG_C(level, component)                          \
  if (!::vids::common::Log::Enabled(level)) {                 \
  } else                                                      \
    ::vids::common::log_detail::Line(level, component)

#define VIDS_TRACE() VIDS_LOG(::vids::common::LogLevel::kTrace)
#define VIDS_DEBUG() VIDS_LOG(::vids::common::LogLevel::kDebug)
#define VIDS_INFO() VIDS_LOG(::vids::common::LogLevel::kInfo)
#define VIDS_WARN() VIDS_LOG(::vids::common::LogLevel::kWarn)
#define VIDS_ERROR() VIDS_LOG(::vids::common::LogLevel::kError)

#define VIDS_TRACE_C(c) VIDS_LOG_C(::vids::common::LogLevel::kTrace, c)
#define VIDS_DEBUG_C(c) VIDS_LOG_C(::vids::common::LogLevel::kDebug, c)
#define VIDS_INFO_C(c) VIDS_LOG_C(::vids::common::LogLevel::kInfo, c)
#define VIDS_WARN_C(c) VIDS_LOG_C(::vids::common::LogLevel::kWarn, c)
#define VIDS_ERROR_C(c) VIDS_LOG_C(::vids::common::LogLevel::kError, c)
