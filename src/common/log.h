// Minimal leveled logger.
//
// The simulator and vIDS components log through this sink so tests can
// silence output and examples can show protocol traces. Not thread-safe by
// design: the discrete-event simulator is single-threaded.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace vids::common {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration. Defaults: level = kWarn, sink = stderr.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void SetLevel(LogLevel level);
  static LogLevel Level();
  /// Replaces the output sink; pass nullptr to restore the stderr default.
  static void SetSink(Sink sink);
  static void Write(LogLevel level, const std::string& message);
  static bool Enabled(LogLevel level) { return level >= Level(); }
};

namespace log_detail {
class Line {
 public:
  explicit Line(LogLevel level) : level_(level) {}
  ~Line() { Log::Write(level_, stream_.str()); }
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;
  template <typename T>
  Line& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace log_detail

}  // namespace vids::common

#define VIDS_LOG(level)                                       \
  if (!::vids::common::Log::Enabled(level)) {                 \
  } else                                                      \
    ::vids::common::log_detail::Line(level)

#define VIDS_TRACE() VIDS_LOG(::vids::common::LogLevel::kTrace)
#define VIDS_DEBUG() VIDS_LOG(::vids::common::LogLevel::kDebug)
#define VIDS_INFO() VIDS_LOG(::vids::common::LogLevel::kInfo)
#define VIDS_WARN() VIDS_LOG(::vids::common::LogLevel::kWarn)
#define VIDS_ERROR() VIDS_LOG(::vids::common::LogLevel::kError)
