// Deterministic random number streams.
//
// Every source of randomness in the simulator (call arrivals, hold times,
// link loss, attack timing) draws from a named Stream derived from a single
// master seed, so an experiment is reproducible bit-for-bit from its seed
// while distinct subsystems stay statistically independent.
#pragma once

#include <cstdint>
#include <string_view>

namespace vids::common {

/// A splittable 64-bit PRNG (xoshiro256++ seeded via SplitMix64).
/// Satisfies UniformRandomBitGenerator, so it composes with <random> if
/// needed, but the distribution helpers below are preferred: they are
/// guaranteed stable across standard library implementations.
class Stream {
 public:
  using result_type = uint64_t;

  /// Derives a stream from `master_seed` and a subsystem `name`; the same
  /// (seed, name) pair always yields the same sequence.
  Stream(uint64_t master_seed, std::string_view name);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Bernoulli trial with success probability `p` in [0, 1].
  bool NextBernoulli(double p);

  /// Normally distributed value (Box–Muller), for jitter-like noise.
  double NextNormal(double mean, double stddev);

  /// Derives an independent child stream, e.g. one per simulated host.
  Stream Fork(std::string_view child_name) const;

 private:
  explicit Stream(uint64_t s0, uint64_t s1, uint64_t s2, uint64_t s3);
  uint64_t state_[4];
  uint64_t origin_;  // hash of (seed, name), used by Fork
};

/// FNV-1a 64-bit hash, used to mix stream names into seeds.
uint64_t HashName(uint64_t seed, std::string_view name);

}  // namespace vids::common
