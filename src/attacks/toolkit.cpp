#include "attacks/toolkit.h"

#include "rtp/packet.h"
#include "rtp/rtcp.h"
#include "sdp/sdp.h"

namespace vids::attacks {

using sip::Message;
using sip::Method;
using sip::NameAddr;
using sip::Via;

std::string AttackToolkit::NextBranch() {
  return "z9hG4bKatk" + std::to_string(serial_++);
}

std::string AttackToolkit::NextCallId() {
  return "atk-" + std::to_string(serial_++) + "@" + host_.ip().ToString();
}

void AttackToolkit::SendSip(const Message& message, net::Endpoint dst,
                            std::optional<net::Endpoint> spoofed_src) {
  net::Datagram dgram;
  dgram.src = spoofed_src.value_or(attacker_endpoint());
  dgram.dst = dst;
  dgram.payload = message.Serialize();
  dgram.kind = net::PayloadKind::kSip;
  if (dgram.payload.size() < 500) {
    dgram.padding_bytes = 500 - static_cast<uint32_t>(dgram.payload.size());
  }
  ++packets_sent_;
  host_.SendRaw(std::move(dgram));
}

void AttackToolkit::SendSpoofedBye(const CallSnapshot& call, bool spoof_ip) {
  // The receiving UA matches the BYE on the dialog identifiers alone (no
  // authentication), so copying Call-ID + tags from the wire suffices.
  Message bye = Message::MakeRequest(Method::kBye, call.callee_aor);
  Via via;
  via.sent_by = spoof_ip && call.caller_contact ? *call.caller_contact
                                                : attacker_endpoint();
  via.branch = NextBranch();
  bye.PushVia(via);
  NameAddr from;
  from.uri = call.caller_aor;
  if (!call.caller_tag.empty()) from.SetTag(call.caller_tag);
  bye.SetFrom(from);
  NameAddr to;
  to.uri = call.callee_aor;
  if (!call.callee_tag.empty()) to.SetTag(call.callee_tag);
  bye.SetTo(to);
  bye.SetCallId(call.call_id);
  bye.SetCseq(sip::CSeq{call.invite_cseq + 1, Method::kBye});
  std::optional<net::Endpoint> spoofed_src;
  if (spoof_ip && call.caller_contact) spoofed_src = *call.caller_contact;
  SendSip(bye, call.callee_contact, spoofed_src);
}

void AttackToolkit::SendSpoofedCancel(const CallSnapshot& call,
                                      net::Endpoint proxy) {
  // §9.1: a CANCEL matches its INVITE through the top Via branch — which
  // the attacker read off the wire.
  Message cancel = Message::MakeRequest(Method::kCancel, call.callee_aor);
  Via via;
  via.sent_by = call.invite_via_sentby;  // forged: pretend to be the proxy
  via.branch = call.invite_branch;
  cancel.PushVia(via);
  NameAddr from;
  from.uri = call.caller_aor;
  if (!call.caller_tag.empty()) from.SetTag(call.caller_tag);
  cancel.SetFrom(from);
  NameAddr to;
  to.uri = call.callee_aor;
  cancel.SetTo(to);
  cancel.SetCallId(call.call_id);
  cancel.SetCseq(sip::CSeq{call.invite_cseq, Method::kCancel});
  SendSip(cancel, proxy);
}

void AttackToolkit::LaunchInviteFlood(const sip::SipUri& target,
                                      net::Endpoint proxy, int count,
                                      sim::Duration interval) {
  for (int i = 0; i < count; ++i) {
    scheduler_.ScheduleAfter(interval * i, [this, target, proxy] {
      Message invite = Message::MakeRequest(Method::kInvite, target);
      Via via;
      via.sent_by = attacker_endpoint();
      via.branch = NextBranch();
      invite.PushVia(via);
      NameAddr from;
      from.uri.user = "flooder";
      from.uri.host = host_.ip().ToString();
      from.SetTag("atk" + std::to_string(serial_++));
      invite.SetFrom(from);
      NameAddr to;
      to.uri = target;
      invite.SetTo(to);
      invite.SetCallId(NextCallId());
      invite.SetCseq(sip::CSeq{1, Method::kInvite});
      NameAddr contact;
      contact.uri.user = "flooder";
      contact.uri.host = host_.ip().ToString();
      contact.uri.port = 5060;
      invite.SetContact(contact);
      const auto offer =
          sdp::MakeAudioOffer(net::Endpoint{host_.ip(), 40000});
      invite.SetBody(offer.Serialize(), "application/sdp");
      SendSip(invite, proxy);
    });
  }
}

void AttackToolkit::LaunchMediaSpam(const CallSnapshot& call, int count,
                                    sim::Duration interval, uint16_t seq_jump,
                                    uint32_t ts_jump) {
  if (!call.callee_media) return;
  const net::Endpoint target = *call.callee_media;
  for (int i = 0; i < count; ++i) {
    scheduler_.ScheduleAfter(
        interval * i, [this, call, target, seq_jump, ts_jump, i] {
          rtp::RtpHeader header;
          header.payload_type = static_cast<uint8_t>(call.payload_type);
          // Same SSRC, sequence/timestamp ahead of the genuine stream —
          // the receiver plays the attacker's media (Fig. 6's threat).
          header.ssrc = call.ssrc_toward_callee;
          header.sequence_number = static_cast<uint16_t>(
              call.last_seq_toward_callee + seq_jump + i);
          header.timestamp =
              call.last_ts_toward_callee + ts_jump +
              static_cast<uint32_t>(i) * 80;
          net::Datagram dgram;
          dgram.src = call.caller_media.value_or(attacker_endpoint());
          dgram.dst = target;
          dgram.payload = header.Serialize();
          dgram.kind = net::PayloadKind::kRtp;
          dgram.padding_bytes = 10;
          ++packets_sent_;
          host_.SendRaw(std::move(dgram));
        });
  }
}

void AttackToolkit::LaunchRtpFlood(net::Endpoint target, int pps,
                                   sim::Duration duration,
                                   uint8_t payload_type) {
  const auto interval = sim::Duration::FromSeconds(1.0 / pps);
  const int count = static_cast<int>(duration.ToSeconds() * pps);
  const uint32_t ssrc = 0xBADBAD00u + static_cast<uint32_t>(serial_++);
  for (int i = 0; i < count; ++i) {
    scheduler_.ScheduleAfter(interval * i, [this, target, payload_type, ssrc,
                                            i] {
      rtp::RtpHeader header;
      header.payload_type = payload_type;
      header.ssrc = ssrc;
      header.sequence_number = static_cast<uint16_t>(i);
      header.timestamp = static_cast<uint32_t>(i) * 80;
      net::Datagram dgram;
      dgram.src = net::Endpoint{host_.ip(), 40002};
      dgram.dst = target;
      dgram.payload = header.Serialize();
      dgram.kind = net::PayloadKind::kRtp;
      dgram.padding_bytes = 160;  // bulky G.711-sized payloads
      ++packets_sent_;
      host_.SendRaw(std::move(dgram));
    });
  }
}

void AttackToolkit::LaunchDrdosReflection(net::Endpoint victim,
                                          net::Endpoint reflector, int count,
                                          sim::Duration interval) {
  for (int i = 0; i < count; ++i) {
    scheduler_.ScheduleAfter(interval * i, [this, victim, reflector] {
      sip::SipUri target;
      target.user = "anyone";
      target.host = reflector.ip.ToString();
      Message options = Message::MakeRequest(Method::kOptions, target);
      Via via;
      via.sent_by = victim;  // responses route back to the victim
      via.branch = NextBranch();
      options.PushVia(via);
      NameAddr from;
      from.uri.user = "nobody";
      from.uri.host = victim.ip.ToString();
      from.SetTag("refl" + std::to_string(serial_++));
      options.SetFrom(from);
      NameAddr to;
      to.uri = target;
      options.SetTo(to);
      options.SetCallId(NextCallId());
      options.SetCseq(sip::CSeq{1, Method::kOptions});
      SendSip(options, reflector, victim);  // spoofed network source
    });
  }
}

void AttackToolkit::SendSpoofedRtcpBye(const CallSnapshot& call) {
  if (!call.callee_media) return;
  rtp::RtcpBye bye;
  bye.ssrcs.push_back(call.ssrc_toward_callee);
  bye.reason = "bye";
  net::Datagram dgram;
  // Claims to come from the caller's RTCP port.
  const net::Endpoint caller_rtcp =
      call.caller_media
          ? net::Endpoint{call.caller_media->ip,
                          static_cast<uint16_t>(call.caller_media->port + 1)}
          : attacker_endpoint();
  dgram.src = caller_rtcp;
  dgram.dst = net::Endpoint{call.callee_media->ip,
                            static_cast<uint16_t>(call.callee_media->port + 1)};
  dgram.payload = bye.Serialize();
  dgram.kind = net::PayloadKind::kRtp;
  ++packets_sent_;
  host_.SendRaw(std::move(dgram));
}

void AttackToolkit::SendHijackInvite(const CallSnapshot& call) {
  Message invite = Message::MakeRequest(Method::kInvite, call.callee_aor);
  Via via;
  via.sent_by = attacker_endpoint();
  via.branch = NextBranch();
  invite.PushVia(via);
  NameAddr from;
  from.uri = call.caller_aor;  // claims to be the caller...
  from.SetTag("hijack" + std::to_string(serial_++));  // ...with a fresh tag
  invite.SetFrom(from);
  NameAddr to;
  to.uri = call.callee_aor;
  if (!call.callee_tag.empty()) to.SetTag(call.callee_tag);
  invite.SetTo(to);
  invite.SetCallId(call.call_id);  // inside the existing dialog
  invite.SetCseq(sip::CSeq{call.invite_cseq + 10, Method::kInvite});
  NameAddr contact;
  contact.uri.user = "mitm";
  contact.uri.host = host_.ip().ToString();
  contact.uri.port = 5060;
  invite.SetContact(contact);
  const auto offer = sdp::MakeAudioOffer(net::Endpoint{host_.ip(), 41000});
  invite.SetBody(offer.Serialize(), "application/sdp");
  SendSip(invite, call.callee_contact);
}

}  // namespace vids::attacks
