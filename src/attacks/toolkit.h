// Attack toolkit: forges the §3 attacks from an attacker-controlled host.
//
// Every primitive crafts raw SIP/RTP datagrams with full control over the
// network-level source (IP spoofing) and the SIP/RTP identifiers (dialog
// and stream spoofing), which is exactly the capability the paper's threat
// model grants an unauthenticated network attacker.
#pragma once

#include <cstdint>
#include <string>

#include "attacks/call_snapshot.h"
#include "net/host.h"
#include "sim/scheduler.h"

namespace vids::attacks {

class AttackToolkit {
 public:
  AttackToolkit(sim::Scheduler& scheduler, net::Host& host)
      : scheduler_(scheduler), host_(host) {}

  net::Endpoint attacker_endpoint() const {
    return net::Endpoint{host_.ip(), 5060};
  }

  /// §3.1 BYE DoS: tears down an established call by sending the callee a
  /// BYE that claims to come from the caller. `spoof_ip` also forges the
  /// network source address.
  void SendSpoofedBye(const CallSnapshot& call, bool spoof_ip = false);

  /// §3.1 CANCEL DoS: aborts a pending INVITE by sending the victim proxy a
  /// CANCEL matching the observed INVITE transaction (same Via branch).
  void SendSpoofedCancel(const CallSnapshot& call, net::Endpoint proxy);

  /// §3.1 INVITE flooding: `count` INVITEs with fresh Call-IDs toward one
  /// target AOR, `interval` apart, via `proxy`.
  void LaunchInviteFlood(const sip::SipUri& target, net::Endpoint proxy,
                         int count, sim::Duration interval);

  /// §3.2 media spamming: injects `count` RTP packets into the callee's
  /// stream reusing the live SSRC with sequence/timestamp far ahead of the
  /// genuine stream.
  void LaunchMediaSpam(const CallSnapshot& call, int count,
                       sim::Duration interval, uint16_t seq_jump = 1000,
                       uint32_t ts_jump = 80000);

  /// §3.2 RTP flooding: blasts `pps` packets/s of alien RTP at an endpoint
  /// for `duration`.
  void LaunchRtpFlood(net::Endpoint target, int pps, sim::Duration duration,
                      uint8_t payload_type = 0);

  /// §3.1 DRDoS: `count` OPTIONS requests with the victim's address as the
  /// spoofed source, bounced off `reflector` (a SIP proxy), whose responses
  /// swamp the victim.
  void LaunchDrdosReflection(net::Endpoint victim, net::Endpoint reflector,
                             int count, sim::Duration interval);

  /// §3.1 call hijacking: a re-INVITE inside the observed dialog carrying
  /// the attacker's own tag and media address, trying to redirect media.
  void SendHijackInvite(const CallSnapshot& call);

  /// Media-plane twin of the BYE DoS: a forged RTCP BYE for the live
  /// stream's SSRC, telling the callee's media stack the stream ended
  /// while the genuine RTP keeps flowing.
  void SendSpoofedRtcpBye(const CallSnapshot& call);

  uint64_t packets_sent() const { return packets_sent_; }

 private:
  void SendSip(const sip::Message& message, net::Endpoint dst,
               std::optional<net::Endpoint> spoofed_src = std::nullopt);
  std::string NextBranch();
  std::string NextCallId();

  sim::Scheduler& scheduler_;
  net::Host& host_;
  uint64_t serial_ = 1;
  uint64_t packets_sent_ = 0;
};

}  // namespace vids::attacks
