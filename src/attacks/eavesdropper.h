// Passive wire observer building CallSnapshots for the attack toolkit.
//
// Attach Feed() to a tap's monitor port (or call it from any packet path).
// It shadows SIP dialogs and RTP streams exactly the way the attacks of §3
// presume an attacker can, and reports when a call becomes attackable.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "attacks/call_snapshot.h"
#include "net/datagram.h"

namespace vids::attacks {

class Eavesdropper {
 public:
  /// Invoked when a call is first observed answered (2xx seen) — the moment
  /// BYE DoS / spam attacks become possible.
  using CallAnsweredHook = std::function<void(const CallSnapshot&)>;

  void set_on_call_answered(CallAnsweredHook hook) {
    on_answered_ = std::move(hook);
  }

  /// Processes one sniffed datagram.
  void Feed(const net::Datagram& dgram, bool from_outside);

  std::optional<CallSnapshot> Get(const std::string& call_id) const;
  /// The most recently answered, still-open call, if any.
  std::optional<CallSnapshot> LatestAnswered() const;
  size_t calls_seen() const { return calls_.size(); }

 private:
  void FeedSip(const net::Datagram& dgram);
  void FeedRtp(const net::Datagram& dgram);

  std::map<std::string, CallSnapshot> calls_;
  std::map<net::Endpoint, std::string> media_to_call_;
  std::string latest_answered_;
  CallAnsweredHook on_answered_;
};

}  // namespace vids::attacks
