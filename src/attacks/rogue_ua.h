// A misbehaving-but-authenticated user agent (paper §3.1: "many attacks are
// still possible ... by an authenticated but misbehaving UA").
//
// Implements the billing/toll-fraud scenario: place a perfectly normal
// call, send a legitimate BYE to stop the billing clock, and keep the RTP
// stream running. Only the cross-protocol SIP↔RTP view of the vIDS can see
// the contradiction.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "rtp/session.h"
#include "sip/user_agent.h"

namespace vids::attacks {

class RogueUa {
 public:
  struct Config {
    sip::UserAgent::Config ua;
    rtp::CodecProfile codec;
    /// How long after answer the fraudulent BYE is sent.
    sim::Duration bye_after = sim::Duration::Seconds(5);
    /// How long the RTP stream keeps running *after* the BYE.
    sim::Duration stream_after_bye = sim::Duration::Seconds(10);
  };

  RogueUa(sim::Scheduler& scheduler, net::Host& host, Config config,
          common::Stream& rng);

  void Register() { ua_.Register(); }

  /// Places the fraudulent call. The BYE/keep-streaming sequence runs
  /// automatically once the call is answered.
  std::string CallAndDefraud(const sip::SipUri& callee);

  uint64_t rtp_packets_after_bye() const { return packets_after_bye_; }
  bool bye_sent() const { return bye_sent_; }

 private:
  sim::Scheduler& scheduler_;
  net::Host& host_;
  Config config_;
  common::Stream rng_;
  sip::UserAgent ua_;
  std::unique_ptr<rtp::MediaSession> media_;
  std::string call_id_;
  bool bye_sent_ = false;
  uint64_t packets_at_bye_ = 0;
  uint64_t packets_after_bye_ = 0;
};

}  // namespace vids::attacks
