#include "attacks/rogue_ua.h"

namespace vids::attacks {

RogueUa::RogueUa(sim::Scheduler& scheduler, net::Host& host, Config config,
                 common::Stream& rng)
    : scheduler_(scheduler),
      host_(host),
      config_(std::move(config)),
      rng_(rng.Fork("rogue-ua")),
      ua_(scheduler, host, config_.ua) {
  ua_.set_media_start([this](const sip::MediaSpec& spec) {
    rtp::MediaSession::Config media_config;
    media_config.local_port = spec.local_rtp.port;
    media_config.remote = spec.remote_rtp;
    media_config.codec = config_.codec;
    media_ = std::make_unique<rtp::MediaSession>(scheduler_, host_,
                                                 media_config, rng_);
    media_->Start();

    // The fraud choreography: stop billing, keep talking.
    scheduler_.ScheduleAfter(config_.bye_after, [this] {
      if (!media_) return;
      packets_at_bye_ = media_->packets_sent();
      bye_sent_ = true;
      ua_.HangUp(call_id_);  // sends a perfectly legitimate BYE
    });
    scheduler_.ScheduleAfter(
        config_.bye_after + config_.stream_after_bye, [this] {
          if (!media_) return;
          packets_after_bye_ = media_->packets_sent() - packets_at_bye_;
          media_->Stop();
        });
  });
  // Ignore the UA's teardown signal: the stream deliberately outlives the
  // dialog. (An honest UA stops its media here.)
  ua_.set_media_stop([](const std::string&) {});
}

std::string RogueUa::CallAndDefraud(const sip::SipUri& callee) {
  // A long planned duration: the rogue never intends the UA-side hangup to
  // fire; the scheduled fraud BYE comes first.
  call_id_ = ua_.PlaceCall(callee, sim::Duration::Seconds(3600));
  return call_id_;
}

}  // namespace vids::attacks
