// What an eavesdropper learns about a call from the wire.
//
// Every attack of the paper's threat model (§3) starts from knowledge an
// on-path observer can extract from unencrypted SIP/SDP/RTP: dialog
// identifiers (Call-ID, tags, branches), contact endpoints, negotiated
// media addresses and the live stream's SSRC/sequence/timestamp position.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/address.h"
#include "sip/message.h"

namespace vids::attacks {

struct CallSnapshot {
  std::string call_id;

  sip::SipUri caller_aor;
  sip::SipUri callee_aor;
  std::string caller_tag;  // From tag of the INVITE
  std::string callee_tag;  // To tag from the 2xx

  /// SIP endpoints: where the INVITE came from as seen on the wire (the
  /// caller's outbound proxy) and the callee's Contact from the 2xx.
  net::Endpoint invite_source;
  net::Endpoint callee_contact;
  std::optional<net::Endpoint> caller_contact;  // Contact in the INVITE

  /// The INVITE's top Via (needed to forge a CANCEL that matches the
  /// victim proxy's pending transaction).
  std::string invite_branch;
  net::Endpoint invite_via_sentby;
  uint32_t invite_cseq = 0;

  /// Negotiated media endpoints: offer = toward the caller, answer = toward
  /// the callee.
  std::optional<net::Endpoint> caller_media;
  std::optional<net::Endpoint> callee_media;
  int payload_type = 18;

  /// Live stream position toward the callee (for SSRC-hijack spam).
  uint32_t ssrc_toward_callee = 0;
  uint16_t last_seq_toward_callee = 0;
  uint32_t last_ts_toward_callee = 0;
  bool media_seen = false;

  bool answered = false;  // 2xx observed
  bool closed = false;    // 200-for-BYE observed
};

}  // namespace vids::attacks
