#include "attacks/eavesdropper.h"

#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"

namespace vids::attacks {

void Eavesdropper::Feed(const net::Datagram& dgram, bool) {
  if (dgram.kind == net::PayloadKind::kRtp) {
    FeedRtp(dgram);
  } else {
    FeedSip(dgram);
  }
}

void Eavesdropper::FeedSip(const net::Datagram& dgram) {
  const auto message = sip::Message::Parse(dgram.payload);
  if (!message) return;
  const auto call_id = message->CallId();
  if (!call_id) return;
  CallSnapshot& snap = calls_[std::string(*call_id)];
  snap.call_id = std::string(*call_id);

  if (message->IsRequest() && message->method() == sip::Method::kInvite) {
    if (const auto from = message->From()) {
      snap.caller_aor = from->uri;
      snap.caller_tag = from->Tag().value_or("");
    }
    if (const auto to = message->To()) snap.callee_aor = to->uri;
    snap.invite_source = dgram.src;
    if (const auto via = message->TopVia()) {
      snap.invite_branch = via->branch;
      snap.invite_via_sentby = via->sent_by;
    }
    if (const auto cseq = message->Cseq()) snap.invite_cseq = cseq->number;
    if (const auto contact = message->ContactHeader()) {
      if (const auto ip = net::IpAddress::Parse(contact->uri.host)) {
        const uint16_t port =
            contact->uri.port != 0 ? contact->uri.port : uint16_t{5060};
        snap.caller_contact = net::Endpoint{*ip, port};
      }
    }
    if (const auto sd = sdp::SessionDescription::Parse(message->body())) {
      if (const auto ep = sd->AudioEndpoint()) {
        snap.caller_media = *ep;
        media_to_call_[*ep] = snap.call_id;
      }
      if (!sd->media.empty() && !sd->media.front().payload_types.empty()) {
        snap.payload_type = sd->media.front().payload_types.front();
      }
    }
    return;
  }

  if (message->IsResponse() && message->method() == sip::Method::kInvite &&
      message->status() >= 200 && message->status() < 300) {
    if (const auto to = message->To()) {
      snap.callee_tag = to->Tag().value_or("");
    }
    if (const auto contact = message->ContactHeader()) {
      if (const auto ip = net::IpAddress::Parse(contact->uri.host)) {
        const uint16_t port =
            contact->uri.port != 0 ? contact->uri.port : uint16_t{5060};
        snap.callee_contact = net::Endpoint{*ip, port};
      }
    }
    if (const auto sd = sdp::SessionDescription::Parse(message->body())) {
      if (const auto ep = sd->AudioEndpoint()) {
        snap.callee_media = *ep;
        media_to_call_[*ep] = snap.call_id;
      }
    }
    if (!snap.answered) {
      snap.answered = true;
      latest_answered_ = snap.call_id;
      if (on_answered_) on_answered_(snap);
    }
    return;
  }

  if (message->IsResponse() && message->method() == sip::Method::kBye &&
      message->status() >= 200) {
    snap.closed = true;
    if (latest_answered_ == snap.call_id) latest_answered_.clear();
  }
}

void Eavesdropper::FeedRtp(const net::Datagram& dgram) {
  const auto header = rtp::RtpHeader::Parse(dgram.payload);
  if (!header) return;
  const auto it = media_to_call_.find(dgram.dst);
  if (it == media_to_call_.end()) return;
  const auto call_it = calls_.find(it->second);
  if (call_it == calls_.end()) return;
  CallSnapshot& snap = call_it->second;
  // Track only the stream toward the callee — the direction the media
  // spamming attack plays into the victim phone.
  if (snap.callee_media && dgram.dst == *snap.callee_media) {
    snap.ssrc_toward_callee = header->ssrc;
    snap.last_seq_toward_callee = header->sequence_number;
    snap.last_ts_toward_callee = header->timestamp;
    snap.media_seen = true;
  }
}

std::optional<CallSnapshot> Eavesdropper::Get(const std::string& call_id) const {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return std::nullopt;
  return it->second;
}

std::optional<CallSnapshot> Eavesdropper::LatestAnswered() const {
  if (latest_answered_.empty()) return std::nullopt;
  return Get(latest_answered_);
}

}  // namespace vids::attacks
