// Baseline 3: a stateful, cross-protocol RULE-MATCHING IDS in the style of
// SCIDIVE (Wu et al., DSN 2004) — the system the paper positions itself
// against (§1, §8).
//
// Like SCIDIVE, it assembles protocol-dependent information from multiple
// packets into aggregated per-session state and runs a Rule Matching
// Engine over it, so it *can* catch cross-protocol attacks it has a rule
// for (e.g. RTP-after-BYE). Its limitation is the one the paper names:
// "this approach has the same disadvantages as that of misuse intrusion
// detection" — every attack needs its own anticipated rule, and there is
// no protocol-specification model, so novel deviations pass silently. The
// ablation bench puts it side by side with the EFSM-based vIDS to show
// exactly that difference.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/datagram.h"
#include "sim/time.h"

namespace vids::baseline {

/// Aggregated state of one call (SCIDIVE's "session"), built from packets.
struct SessionState {
  std::string call_id;
  bool invite_seen = false;
  bool established = false;        // 200-for-INVITE observed
  net::IpAddress invite_src;       // network source of the INVITE
  std::optional<sim::Time> bye_at; // first BYE observed
  net::IpAddress bye_src;
  std::optional<net::Endpoint> offer_media;
  std::optional<net::Endpoint> answer_media;
  // Media counters.
  uint64_t rtp_packets = 0;
  uint64_t rtp_after_bye = 0;
  sim::Time last_rtp_at;
  sim::Time last_event_at;
};

struct RuleAlert {
  sim::Time when;
  std::string rule;
  std::string call_id;
  std::string detail;
};

class RuleIds {
 public:
  struct Config {
    /// Grace for in-flight RTP after a BYE before the rtp-after-bye rule
    /// fires (the analog of the vIDS timer T).
    sim::Duration bye_grace = sim::Duration::Millis(120);
    /// INVITE-rate rule: more than this many INVITEs to one destination
    /// AOR within the window fires.
    int invite_threshold = 5;
    sim::Duration invite_window = sim::Duration::Seconds(1);
    /// Sessions idle longer than this are dropped from the state table.
    sim::Duration session_idle_timeout = sim::Duration::Seconds(180);
  };

  RuleIds() : RuleIds(Config{}) {}
  explicit RuleIds(Config config) : config_(config) {}

  /// Aggregates one packet into the session state and runs the rules.
  void Inspect(const net::Datagram& dgram, bool from_outside, sim::Time now);

  const std::vector<RuleAlert>& alerts() const { return alerts_; }
  size_t CountAlerts(std::string_view rule) const;
  size_t session_count() const { return sessions_.size(); }

 private:
  void InspectSip(const net::Datagram& dgram, sim::Time now);
  void InspectRtp(const net::Datagram& dgram, sim::Time now);
  void Raise(sim::Time now, std::string rule, const std::string& call_id,
             std::string detail);
  void Sweep(sim::Time now);

  Config config_;
  std::map<std::string, SessionState> sessions_;        // by Call-ID
  std::map<net::Endpoint, std::string> media_to_call_;
  // invite-rate rule state, per destination AOR.
  struct RateWindow {
    sim::Time start;
    int count = 0;
    bool alerted = false;
  };
  std::map<std::string, RateWindow> invite_rates_;
  std::vector<RuleAlert> alerts_;
  // Dedup: one alert per (rule, call) per ongoing violation.
  std::map<std::string, sim::Time> recent_;
};

}  // namespace vids::baseline
