#include "baseline/rule_ids.h"

#include "rtp/packet.h"
#include "rtp/rtcp.h"
#include "sdp/sdp.h"
#include "sip/message.h"

namespace vids::baseline {

void RuleIds::Inspect(const net::Datagram& dgram, bool, sim::Time now) {
  Sweep(now);
  if (rtp::LooksLikeRtcp(dgram.payload)) return;  // no RTCP rules
  if (dgram.kind != net::PayloadKind::kRtp) {
    if (sip::Message::Parse(dgram.payload)) {
      InspectSip(dgram, now);
      return;
    }
  }
  if (rtp::RtpHeader::Parse(dgram.payload)) {
    InspectRtp(dgram, now);
  } else if (dgram.kind == net::PayloadKind::kSip &&
             sip::Message::Parse(dgram.payload)) {
    InspectSip(dgram, now);
  }
}

void RuleIds::InspectSip(const net::Datagram& dgram, sim::Time now) {
  const auto message = sip::Message::Parse(dgram.payload);
  const auto call_id_hdr = message->CallId();
  if (!call_id_hdr) return;
  SessionState& session = sessions_[std::string(*call_id_hdr)];
  session.call_id = std::string(*call_id_hdr);
  session.last_event_at = now;

  const auto note_media = [&](std::optional<net::Endpoint>& slot) {
    if (const auto sd = sdp::SessionDescription::Parse(message->body())) {
      if (const auto ep = sd->AudioEndpoint()) {
        slot = *ep;
        media_to_call_[*ep] = session.call_id;
      }
    }
  };

  if (message->IsRequest()) {
    switch (message->method()) {
      case sip::Method::kInvite:
        if (!session.invite_seen) {
          session.invite_seen = true;
          session.invite_src = dgram.src.ip;
          note_media(session.offer_media);
          // --- rule: invite-rate (per destination AOR) ---
          if (const auto to = message->To()) {
            RateWindow& window = invite_rates_[to->uri.UserAtHost()];
            if (window.count == 0 ||
                now - window.start > config_.invite_window) {
              window = RateWindow{now, 0, false};
            }
            ++window.count;
            if (window.count > config_.invite_threshold && !window.alerted) {
              window.alerted = true;
              Raise(now, "invite-rate", session.call_id,
                    "dest=" + to->uri.UserAtHost());
            }
          }
        }
        break;
      case sip::Method::kBye:
        if (!session.bye_at) {
          session.bye_at = now;
          session.bye_src = dgram.src.ip;
        }
        break;
      case sip::Method::kCancel:
        // --- rule: cancel-source-mismatch ---
        if (session.invite_seen && !session.established &&
            dgram.src.ip != session.invite_src) {
          Raise(now, "cancel-source-mismatch", session.call_id,
                "cancel from " + dgram.src.ip.ToString());
        }
        break;
      default:
        break;
    }
    return;
  }
  if (message->status() >= 200 && message->status() < 300 &&
      message->method() == sip::Method::kInvite) {
    session.established = true;
    note_media(session.answer_media);
  }
}

void RuleIds::InspectRtp(const net::Datagram& dgram, sim::Time now) {
  const auto it = media_to_call_.find(dgram.dst);
  if (it == media_to_call_.end()) return;  // no rule about orphan media
  const auto session_it = sessions_.find(it->second);
  if (session_it == sessions_.end()) return;
  SessionState& session = session_it->second;
  session.last_event_at = now;
  ++session.rtp_packets;
  session.last_rtp_at = now;
  // --- rule: rtp-after-bye (the cross-protocol rule SCIDIVE is built
  // around: signaling says over, media says not) ---
  if (session.bye_at && now - *session.bye_at > config_.bye_grace) {
    ++session.rtp_after_bye;
    Raise(now, "rtp-after-bye", session.call_id,
          "src=" + dgram.src.ip.ToString());
  }
}

void RuleIds::Raise(sim::Time now, std::string rule,
                    const std::string& call_id, std::string detail) {
  const std::string key = rule + "|" + call_id;
  const auto it = recent_.find(key);
  if (it != recent_.end() && now - it->second < sim::Duration::Seconds(1)) {
    return;
  }
  recent_[key] = now;
  alerts_.push_back(RuleAlert{now, std::move(rule), call_id,
                              std::move(detail)});
}

void RuleIds::Sweep(sim::Time now) {
  if (sessions_.size() < 1024) return;  // cheap bound; exactness irrelevant
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_event_at > config_.session_idle_timeout) {
      std::erase_if(media_to_call_, [&](const auto& kv) {
        return kv.second == it->first;
      });
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t RuleIds::CountAlerts(std::string_view rule) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.rule == rule) ++count;
  }
  return count;
}

}  // namespace vids::baseline
