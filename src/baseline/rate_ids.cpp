#include "baseline/rate_ids.h"

namespace vids::baseline {

void RateIds::Inspect(const net::Datagram& dgram, bool, sim::Time now) {
  Counter& counter = counters_[dgram.src.ip];
  if (counter.count == 0 || now - counter.window_start > config_.window) {
    counter.window_start = now;
    counter.count = 0;
    counter.alerted = false;
  }
  ++counter.count;
  if (counter.count > config_.threshold && !counter.alerted) {
    counter.alerted = true;
    alerts_.push_back(RateAlert{now, dgram.src.ip, counter.count});
  }
}

}  // namespace vids::baseline
