#include "baseline/signature_ids.h"

#include "rtp/packet.h"
#include "sip/message.h"

namespace vids::baseline {

void SignatureIds::InstallDefaultRules() {
  AddRule(SignatureRule{.name = "malformed-packet",
                        .pattern = "",
                        .src_ip = std::nullopt,
                        .match_malformed = true});
  // Known scanner / attack-tool fingerprints (the kind of knowledge a
  // signature base accumulates).
  AddRule(SignatureRule{.name = "scanner-user-agent",
                        .pattern = "User-Agent: friendly-scanner",
                        .src_ip = std::nullopt,
                        .match_malformed = false});
  AddRule(SignatureRule{.name = "sipvicious-probe",
                        .pattern = "sipvicious",
                        .src_ip = std::nullopt,
                        .match_malformed = false});
}

void SignatureIds::Inspect(const net::Datagram& dgram, bool, sim::Time now) {
  ++packets_inspected_;
  const bool parses = sip::Message::Parse(dgram.payload).has_value() ||
                      rtp::RtpHeader::Parse(dgram.payload).has_value();
  for (const auto& rule : rules_) {
    if (rule.match_malformed) {
      if (parses) continue;
    } else {
      if (!rule.pattern.empty() &&
          dgram.payload.find(rule.pattern) == std::string::npos) {
        continue;
      }
    }
    if (rule.src_ip && *rule.src_ip != dgram.src.ip) continue;
    alerts_.push_back(SignatureAlert{now, rule.name, dgram.src, dgram.dst});
  }
}

size_t SignatureIds::CountAlerts(std::string_view rule_name) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.rule == rule_name) ++count;
  }
  return count;
}

}  // namespace vids::baseline
