// Baseline 1: a stateless, per-packet signature matcher (Snort-style).
//
// The paper positions vIDS against signature engines that "inspect packets
// by signature matching" (§1, Snort) and against SCIDIVE's rule matching
// (§8). This baseline implements that class honestly: each packet is
// matched in isolation against byte-pattern rules. The ablation benchmark
// shows what that buys (malformed traffic, known bad identities) and what
// it structurally cannot see (a spoofed BYE is byte-for-byte legitimate; a
// toll-fraud stream is valid RTP — only cross-packet, cross-protocol state
// separates them from normal traffic).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/datagram.h"
#include "sim/time.h"

namespace vids::baseline {

struct SignatureRule {
  std::string name;
  /// Substring the payload must contain (empty = any payload).
  std::string pattern;
  /// If set, the rule fires only for this network-level source.
  std::optional<net::IpAddress> src_ip;
  /// If true, the rule fires on packets that fail to parse as SIP or RTP.
  bool match_malformed = false;
};

struct SignatureAlert {
  sim::Time when;
  std::string rule;
  net::Endpoint src;
  net::Endpoint dst;
};

class SignatureIds {
 public:
  void AddRule(SignatureRule rule) { rules_.push_back(std::move(rule)); }
  /// Installs a small default VoIP ruleset (malformed packets, suspicious
  /// method bursts markers, known-scanner user agents).
  void InstallDefaultRules();

  /// Per-packet, stateless inspection.
  void Inspect(const net::Datagram& dgram, bool from_outside, sim::Time now);

  const std::vector<SignatureAlert>& alerts() const { return alerts_; }
  uint64_t packets_inspected() const { return packets_inspected_; }
  size_t CountAlerts(std::string_view rule_name) const;

 private:
  std::vector<SignatureRule> rules_;
  std::vector<SignatureAlert> alerts_;
  uint64_t packets_inspected_ = 0;
};

}  // namespace vids::baseline
