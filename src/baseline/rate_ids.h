// Baseline 2: a naive per-source rate anomaly detector.
//
// The simplest stateful defense: count packets per network source in a
// sliding window and alert above a threshold. Catches brute floods; blind
// to everything that is low-rate and semantically wrong (spoofed BYE,
// spoofed CANCEL, toll fraud, SSRC-hijack spam at stream rate). Used by the
// ablation bench as the second rung of the comparison ladder.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/datagram.h"
#include "sim/time.h"

namespace vids::baseline {

class RateIds {
 public:
  struct Config {
    int threshold = 200;  // packets per window per source
    sim::Duration window = sim::Duration::Seconds(1);
  };

  RateIds() : RateIds(Config{}) {}
  explicit RateIds(Config config) : config_(config) {}

  void Inspect(const net::Datagram& dgram, bool from_outside, sim::Time now);

  struct RateAlert {
    sim::Time when;
    net::IpAddress src;
    int count = 0;
  };
  const std::vector<RateAlert>& alerts() const { return alerts_; }

 private:
  struct Counter {
    sim::Time window_start;
    int count = 0;
    bool alerted = false;
  };
  Config config_;
  std::map<net::IpAddress, Counter> counters_;
  std::vector<RateAlert> alerts_;
};

}  // namespace vids::baseline
