// make_corpus: writes the checked-in pcap corpus (src/capture/corpus.h).
//
// Usage: make_corpus [--out=DIR]   (default: tests/corpus)
//
// Output is byte-deterministic — fixed capture epoch, no clocks, no
// randomness — so CI can regenerate into a scratch directory and
// byte-compare against the checked-in files: the alert-equality replay
// gate can never drift from the generator that defines it.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "capture/corpus.h"
#include "capture/pcap.h"

int main(int argc, char** argv) {
  using namespace vids;

  std::string out_dir = "tests/corpus";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_dir = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: make_corpus [--out=DIR]\n");
      return 2;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "make_corpus: cannot create %s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  for (const auto& file : capture::corpus::BuildAll()) {
    const std::string path = out_dir + "/" + file.name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "make_corpus: cannot write %s\n", path.c_str());
      return 1;
    }
    const size_t written = std::fwrite(file.bytes.data(), 1,
                                       file.bytes.size(), f);
    if (std::fclose(f) != 0 || written != file.bytes.size()) {
      std::fprintf(stderr, "make_corpus: short write to %s\n", path.c_str());
      return 1;
    }
    std::printf("%s: %zu bytes\n", path.c_str(), file.bytes.size());
  }
  std::printf("inside subnet for replay: %s\n",
              capture::corpus::InsideSubnet().ToString().c_str());
  return 0;
}
